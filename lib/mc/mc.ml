(* Bounded exhaustive model checking of the reference monitor.

   The 100-seed oracles (E15/E18/E19/E20) sample the interleaving
   space; the certification bar is exhaustive: no stale Permit, no
   fail-open, no downward flow under EVERY interleaving of a bounded
   plant.  This module enumerates, breadth-first, all interleavings of
   a small action alphabet on a 2-CPU / 2-segment / 2-principal plant,
   executing every action through the real kernel paths —
   [Api.Call.dispatch], the [Smp] connect protocol, the [Salvager] —
   never a hand-written abstraction of them.

   Design:

   - {b A state is its trace.}  [System.t] is mutable with no
     snapshot, so [Mc] uses canonical re-execution: a state is the
     deterministic replay of its action trace from a fresh boot.
     Replay pushes every action of the trace into the simulator's
     event queue at the same firing time and lets [Sim.run] drain it —
     ties fire in insertion order ([Event_queue]'s stability
     contract), which is exactly what makes replay deterministic.

   - {b Canonicalization.}  After replay the instance is rendered to
     one canonical string: object attributes and contents, per-process
     KST/SDW state, every cache front that can hold a descriptor
     (per-process associative memories, per-CPU CAMs and PTW fronts),
     queued connects, the crash journal (sans timestamps) and the
     MC-level taint sets.  Timing observables (clocks, lock free-at,
     obs counters, audit length) are deliberately excluded — mediation
     state, not timing, is what the safety predicates range over.  The
     visited set keys on the full canonical string (sound — no hash
     collision can merge distinct states); [fingerprint] digests it
     for display and tests.

   - {b Predicates at every state.}  P1 no stale Permit: every fresh
     entry in every SDW front must not grant a mode a fresh
     [Hierarchy.sdw_for] recomputation refuses.  P2 fail-secure:
     granted content accesses re-validated against
     [Hierarchy.effective_mode] at grant time, faulted gate calls must
     return an error, and a salvage must leave zero descriptor
     disagreements and an empty journal (the E15 invariant).  P3 no
     downward flow: E10-style taint accounting over the granted
     accesses — an object may never accumulate a taint its label does
     not dominate, a subject never a taint its clearance does not
     dominate.  P4 AV parity: the compiled access-vector verdict must
     equal the structured [Policy.check] recomputation for every
     subject x object x mode.

   - {b The seeded-bug leg.}  [Smp.set_deferred_connects] re-enables
     the pre-PR 5 stale-Permit window (remote connects queue instead
     of delivering synchronously).  With [~bug:true] the alphabet
     gains explicit [Deliver] actions and the checker finds the
     minimal two-action counterexample — warm a remote CPU's CAM, then
     revoke — that the seeded oracles only trip over probabilistically.

   - {b Parallel frontier.}  Each BFS level expands all (state,
     action) candidates through [Par.map] and merges results
     sequentially in task order, so the outcome is byte-identical at
     any [MULTICS_JOBS] pool size. *)

module System = Multics_kernel.System
module Config = Multics_kernel.Config
module Api = Multics_kernel.Api
module Call = Api.Call
module Salvager = Multics_kernel.Salvager
module Smp = Multics_smp.Smp
module Sim = Multics_proc.Sim
module Hierarchy = Multics_fs.Hierarchy
module Kst = Multics_fs.Kst
module Uid = Multics_fs.Uid
module Hardware = Multics_machine.Hardware
module Sdw = Multics_machine.Sdw
module Mode = Multics_machine.Mode
module Brackets = Multics_machine.Brackets
module Ring = Multics_machine.Ring
module Label = Multics_access.Label
module Acl = Multics_access.Acl
module Principal = Multics_access.Principal
module Policy = Multics_access.Policy
module Par = Multics_par.Par
module Prng = Multics_util.Prng

(* ----- The action alphabet ----- *)

type principal = Alice | Bob
type seg = S0 | S1

type action =
  | Read of principal * seg
  | Write of principal * seg
  | Acl_revoke  (** s0's ACL back to owner-only: the revoking edit *)
  | Acl_grant  (** s0's ACL widened to owner + Bob rw *)
  | Bracket_widen  (** s0's ring brackets (4,4,4) -> (4,5,5) *)
  | Bracket_restore  (** s0's ring brackets back to user_data *)
  | Faulted_create
      (** a [gate.abort=nth:1] plan armed around a [Create_segment]:
          the mutation lands, the call is torn down mid-flight and
          journaled — the fault interleaving P2 ranges over *)
  | Salvage
  | Deliver of int  (** bug mode only: drain one CPU's queued connects *)

let principal_name = function Alice -> "alice" | Bob -> "bob"
let seg_name = function S0 -> "s0" | S1 -> "s1"

let action_to_string = function
  | Read (who, seg) -> Printf.sprintf "read_%s_%s" (principal_name who) (seg_name seg)
  | Write (who, seg) -> Printf.sprintf "write_%s_%s" (principal_name who) (seg_name seg)
  | Acl_revoke -> "acl_revoke"
  | Acl_grant -> "acl_grant"
  | Bracket_widen -> "bracket_widen"
  | Bracket_restore -> "bracket_restore"
  | Faulted_create -> "faulted_create"
  | Salvage -> "salvage"
  | Deliver cpu -> Printf.sprintf "deliver_cpu%d" cpu

(* Alice runs on CPU 0, Bob on CPU 1 — two principals exercising two
   CPUs' cache fronts against each other is the smallest plant in
   which cross-CPU staleness can exist at all. *)
let alphabet ~bug =
  List.concat_map (fun who -> List.map (fun seg -> Read (who, seg)) [ S0; S1 ]) [ Alice; Bob ]
  @ List.concat_map
      (fun who -> List.map (fun seg -> Write (who, seg)) [ S0; S1 ])
      [ Alice; Bob ]
  @ [ Acl_revoke; Acl_grant; Bracket_widen; Bracket_restore; Faulted_create; Salvage ]
  @ if bug then [ Deliver 0; Deliver 1 ] else []

let action_of_string s =
  List.find_opt (fun a -> action_to_string a = s) (alphabet ~bug:true)

let trace_to_string trace = String.concat "," (List.map action_to_string trace)

let trace_of_string s =
  if String.trim s = "" then Some []
  else
    let parts = String.split_on_char ',' s in
    let actions = List.map (fun p -> action_of_string (String.trim p)) parts in
    if List.for_all Option.is_some actions then Some (List.map Option.get actions) else None

(* ----- Violations ----- *)

type violation = { predicate : string; detail : string }

(* ----- The plant ----- *)

let secret = Label.make Label.Secret []
let acl_s0_initial = Acl.of_strings [ ("Alice.Dev.*", "rew"); ("Bob.Dev.*", "r") ]
let acl_s0_revoked = Acl.of_strings [ ("Alice.Dev.*", "rew") ]
let acl_s0_granted = Acl.of_strings [ ("Alice.Dev.*", "rew"); ("Bob.Dev.*", "rw") ]
let acl_s1 = Acl.of_strings [ ("Alice.Dev.*", "rew"); ("Bob.Dev.*", "r") ]
let widened_brackets = Brackets.make ~r1:4 ~r2:5 ~r3:5

type instance = {
  system : System.t;
  plant : Smp.t;
  sim : Sim.t;
  alice : int;
  bob : int;
  home : Uid.t;  (** Alice's home directory — where the plant objects live *)
  home_segno : int;  (** ... as Alice addresses it *)
  s0 : Uid.t;
  s1 : Uid.t;
  segnos : (principal * seg, int) Hashtbl.t;  (** per-principal segment numbers *)
  (* E10-style taint accounting at the checker level: granted reads
     accumulate the object's taints into the subject, granted writes
     deposit the subject's carried taints into the object. *)
  mutable alice_carried : Label.t list;
  mutable bob_carried : Label.t list;
  mutable s0_taints : Label.t list;
  mutable s1_taints : Label.t list;
  mutable violations : violation list;  (** newest first; per-action (P2/P3) checks land here *)
}

let plumbing what = function
  | Ok reply -> reply
  | Error e -> failwith (Printf.sprintf "Mc plant %s: %s" what (Api.error_to_string e))

let expect_segno what response =
  match plumbing what response with
  | Call.Segno segno -> segno
  | _ -> failwith (Printf.sprintf "Mc plant %s: unexpected reply shape" what)

let handle_of t = function Alice -> t.alice | Bob -> t.bob
let cpu_of = function Alice -> 0 | Bob -> 1

let proc_of t who =
  match System.proc t.system (handle_of t who) with
  | Some p -> p
  | None -> failwith "Mc plant: process vanished"

(* Every action dispatches from its principal's CPU — the point of the
   plant is two CPUs' descriptor fronts diverging. *)
let dispatch t ~who request =
  Smp.set_current t.plant (cpu_of who);
  Call.dispatch t.system ~handle:(handle_of t who) request

let uid_of t = function S0 -> t.s0 | S1 -> t.s1
let segno_of t who seg = Hashtbl.find t.segnos (who, seg)

let carried t = function Alice -> t.alice_carried | Bob -> t.bob_carried

let set_carried t who taints =
  match who with Alice -> t.alice_carried <- taints | Bob -> t.bob_carried <- taints

let taints_of t = function S0 -> t.s0_taints | S1 -> t.s1_taints

let set_taints t seg taints =
  match seg with S0 -> t.s0_taints <- taints | S1 -> t.s1_taints <- taints

let add_taints existing extra =
  List.fold_left
    (fun acc l -> if List.exists (Label.equal l) acc then acc else l :: acc)
    existing extra

let level_of t who = (proc_of t who).System.clearance

let boot ~bug () =
  let system = System.create Config.kernel_6180 in
  let plant = Smp.create ~ncpus:2 ~cost:(System.cost system) () in
  System.attach_plant system (Some plant);
  let sim = Sim.create ~cost:(System.cost system) ~virtual_processors:1 in
  Smp.set_now plant (fun () -> Sim.now sim);
  if bug then Smp.set_deferred_connects plant true;
  ignore
    (System.add_account system ~person:"Alice" ~project:"Dev" ~password:"pw"
       ~clearance:Label.unclassified);
  ignore
    (System.add_account system ~person:"Bob" ~project:"Dev" ~password:"pw" ~clearance:secret);
  let login person =
    match System.login system ~person ~project:"Dev" ~password:"pw" with
    | Ok handle -> handle
    | Error e -> failwith (System.login_error_to_string e)
  in
  let alice = login "Alice" in
  let bob = login "Bob" in
  let aproc =
    match System.proc system alice with Some p -> p | None -> failwith "Mc: no Alice"
  in
  let home = aproc.System.working_dir in
  let home_segno = System.install_known system aproc ~uid:home in
  Smp.set_current plant 0;
  (* s0 is secret, s1 unclassified, both in Alice's (unclassified)
     home: Bob (secret) may read s0 and not write s1; Alice may write
     s0 blind and not read it — every lattice rule has a live case. *)
  let create name acl label =
    let segno =
      expect_segno ("create " ^ name)
        (Call.dispatch system ~handle:alice
           (Call.Create_segment { dir_segno = home_segno; name; acl; label; brackets = None }))
    in
    match Kst.uid_of_segno aproc.System.kst segno with
    | Ok uid -> (segno, uid)
    | Error _ -> failwith ("Mc plant: no uid for " ^ name)
  in
  let alice_s0, s0 = create "s0" acl_s0_initial secret in
  let alice_s1, s1 = create "s1" acl_s1 Label.unclassified in
  let bproc = match System.proc system bob with Some p -> p | None -> failwith "Mc: no Bob" in
  let bob_s0 = System.install_known system bproc ~uid:s0 in
  let bob_s1 = System.install_known system bproc ~uid:s1 in
  let segnos = Hashtbl.create 8 in
  List.iter
    (fun (k, v) -> Hashtbl.replace segnos k v)
    [
      ((Alice, S0), alice_s0);
      ((Alice, S1), alice_s1);
      ((Bob, S0), bob_s0);
      ((Bob, S1), bob_s1);
    ];
  {
    system;
    plant;
    sim;
    alice;
    bob;
    home;
    home_segno;
    s0;
    s1;
    segnos;
    alice_carried = [ Label.unclassified ];
    bob_carried = [ secret ];
    s0_taints = [ secret ];
    s1_taints = [ Label.unclassified ];
    violations = [];
  }

let record t predicate detail = t.violations <- { predicate; detail } :: t.violations

(* ----- Applying one action (through the real gate layer) ----- *)

let fresh_mode t who seg =
  let p = proc_of t who in
  Hierarchy.effective_mode (System.hierarchy t.system) ~subject:(System.subject_of p)
    ~uid:(uid_of t seg)

(* E15's invariant-2 oracle: every installed descriptor must agree
   with a fresh recomputation from ACL x label x brackets. *)
let descriptor_disagreements t =
  List.fold_left
    (fun bad handle ->
      match System.proc t.system handle with
      | None -> bad
      | Some p ->
          let subject = System.subject_of p in
          let hierarchy = System.hierarchy t.system in
          List.fold_left
            (fun bad segno ->
              match Kst.sdw_of p.System.kst segno with
              | None -> bad
              | Some installed -> (
                  match
                    Kst.uid_of_segno p.System.kst segno |> Result.to_option
                    |> Fun.flip Option.bind (fun uid ->
                           Hierarchy.sdw_for hierarchy ~subject ~uid)
                  with
                  | None -> bad + 1
                  | Some fresh ->
                      if
                        Mode.equal (Sdw.mode installed) (Sdw.mode fresh)
                        && Brackets.equal (Sdw.brackets installed) (Sdw.brackets fresh)
                        && Sdw.gate_bound installed = Sdw.gate_bound fresh
                      then bad
                      else bad + 1))
            bad
            (Kst.known_segnos p.System.kst))
    0 (System.handles t.system)

let apply_action t action =
  match action with
  | Read (who, seg) -> (
      match dispatch t ~who (Call.Read_word { segno = segno_of t who seg; offset = 0 }) with
      | Ok _ ->
          (* P2: the grant must survive a fresh recomputation now. *)
          let m = fresh_mode t who seg in
          if not m.Mode.read then
            record t "P2-fail-secure"
              (Printf.sprintf "%s was granted read on %s but a fresh recomputation refuses"
                 (principal_name who) (seg_name seg));
          (* P3: the reader now carries the object's taints. *)
          set_carried t who (add_taints (carried t who) (taints_of t seg))
      | Error _ -> ())
  | Write (who, seg) -> (
      match
        dispatch t ~who (Call.Write_word { segno = segno_of t who seg; offset = 0; value = 7 })
      with
      | Ok _ ->
          let m = fresh_mode t who seg in
          if not m.Mode.write then
            record t "P2-fail-secure"
              (Printf.sprintf "%s was granted write on %s but a fresh recomputation refuses"
                 (principal_name who) (seg_name seg));
          (* P3: the object absorbs the writer's carried taints. *)
          set_taints t seg
            (add_taints (taints_of t seg) (level_of t who :: carried t who))
      | Error _ -> ())
  | Acl_revoke ->
      ignore
        (plumbing "acl_revoke"
           (dispatch t ~who:Alice
              (Call.Set_acl { segno = segno_of t Alice S0; acl = acl_s0_revoked })))
  | Acl_grant ->
      ignore
        (plumbing "acl_grant"
           (dispatch t ~who:Alice
              (Call.Set_acl { segno = segno_of t Alice S0; acl = acl_s0_granted })))
  | Bracket_widen ->
      ignore
        (plumbing "bracket_widen"
           (dispatch t ~who:Alice
              (Call.Set_brackets { segno = segno_of t Alice S0; brackets = widened_brackets })))
  | Bracket_restore ->
      ignore
        (plumbing "bracket_restore"
           (dispatch t ~who:Alice
              (Call.Set_brackets { segno = segno_of t Alice S0; brackets = Brackets.user_data })))
  | Faulted_create ->
      (* Arm a deterministic one-shot abort at the gate layer, tear a
         creation down mid-flight, disarm.  The orphan branch and its
         journal entry persist into the reachable state space until
         some interleaving salvages them. *)
      ignore
        (plumbing "arm"
           (dispatch t ~who:Alice (Call.Set_fault_plan { seed = 1; spec = "gate.abort=nth:1" })));
      (match
         dispatch t ~who:Alice
           (Call.Create_segment
              {
                dir_segno = t.home_segno;
                name = "tmp";
                acl = Acl.of_strings [ ("Alice.Dev.*", "rew") ];
                label = Label.unclassified;
                brackets = None;
              })
       with
      | Ok _ -> record t "P2-fail-secure" "a faulted create returned success"
      | Error _ -> ());
      ignore (plumbing "disarm" (dispatch t ~who:Alice Call.Clear_faults))
  | Salvage -> (
      match dispatch t ~who:Alice Call.Salvage with
      | Ok (Call.Salvaged report) ->
          if not report.Salvager.quota_ok then
            record t "P2-fail-secure" "quota invariant broken after salvage";
          if System.crash_journal t.system <> [] then
            record t "P2-fail-secure" "crash journal survived a salvage";
          let bad = descriptor_disagreements t in
          if bad > 0 then
            record t "P2-fail-secure"
              (Printf.sprintf "%d descriptor disagreements survived a salvage" bad)
      | Ok _ | Error _ -> failwith "Mc plant salvage: unexpected response")
  | Deliver cpu -> ignore (Smp.deliver_connects t.plant ~cpu)

(* ----- Replay: canonical re-execution through the event queue -----

   Every action of the trace is pushed at the same firing time; the
   queue's tie-order stability (insertion order) is what makes the
   schedule — and therefore the state — a pure function of the trace. *)
let replay ~bug trace =
  let t = boot ~bug () in
  List.iter (fun action -> Sim.at t.sim ~delay:1 (fun () -> apply_action t action)) trace;
  Sim.run t.sim;
  t

(* ----- Canonicalization ----- *)

let render_sdw sdw =
  Fmt.str "%s/%a/%d" (Mode.to_string (Sdw.mode sdw)) Brackets.pp (Sdw.brackets sdw)
    (Sdw.gate_bound sdw)

let render_acl acl =
  Acl.entries acl
  |> List.map (fun (pattern, mode) ->
         Principal.pattern_to_string pattern ^ ":" ^ Mode.to_string mode)
  |> List.sort compare |> String.concat " "

let render_labels labels = labels |> List.map Label.to_string |> List.sort compare |> String.concat "+"

(* The orphan branch a faulted create leaves behind, found by name so
   its (run-dependent) uid never leaks into the canonical form. *)
let tmp_uid t =
  match
    Hierarchy.lookup (System.hierarchy t.system) ~subject:System.initializer_subject
      ~dir:t.home ~name:"tmp"
  with
  | Ok uid -> Some uid
  | Error _ -> None

let canonical t =
  let b = Buffer.create 1024 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let hierarchy = System.hierarchy t.system in
  (* Objects: attributes + the one tracked word of contents. *)
  let render_object name uid =
    match Hierarchy.acl_of hierarchy uid with
    | None -> bpf "obj %s absent\n" name
    | Some acl ->
        bpf "obj %s acl{%s} label=%s brackets=%s gate=%d word0=%d\n" name (render_acl acl)
          (match Hierarchy.label_of hierarchy uid with
          | Some l -> Label.to_string l
          | None -> "?")
          (match Hierarchy.brackets_of hierarchy uid with
          | Some brackets -> Fmt.str "%a" Brackets.pp brackets
          | None -> "?")
          (Option.value ~default:0 (Hierarchy.gate_bound_of hierarchy uid))
          (Option.value ~default:(-1) (Hierarchy.raw_read_word hierarchy ~uid ~offset:0))
  in
  render_object "s0" t.s0;
  render_object "s1" t.s1;
  (match tmp_uid t with None -> bpf "obj tmp absent\n" | Some uid -> render_object "tmp" uid);
  (* Processes: ring, known segments, installed SDWs, and the
     per-process associative-memory front. *)
  List.iter
    (fun who ->
      let p = proc_of t who in
      bpf "proc %s ring=%d kst{" (principal_name who) (Ring.to_int p.System.ring);
      List.iter
        (fun segno ->
          bpf " %d=%s" segno
            (match Kst.sdw_of p.System.kst segno with
            | Some sdw -> render_sdw sdw
            | None -> "-"))
        (List.sort compare (Kst.known_segnos p.System.kst));
      bpf " } assoc{";
      List.iter
        (fun (segno, sdw) -> bpf " %d=%s" segno (render_sdw sdw))
        (List.sort compare (Hardware.Assoc.entries p.System.assoc));
      bpf " }\n")
    [ Alice; Bob ];
  (* Per-CPU fronts. *)
  for cpu = 0 to 1 do
    bpf "cpu %d cam{" cpu;
    List.iter
      (fun (key, sdw) -> bpf " %d=%s" key (render_sdw sdw))
      (List.sort compare (Smp.cam_entries t.plant ~cpu));
    bpf " } ptw{";
    List.iter (fun key -> bpf " %d" key) (List.sort compare (Smp.ptw_keys t.plant ~cpu));
    bpf " }\n"
  done;
  (* Queued (undelivered) connects, in arrival order. *)
  bpf "pending{";
  List.iter (fun (cpu, tag) -> bpf " %d:%s" cpu tag) (Smp.pending_connects t.plant);
  bpf " }\n";
  (* The crash journal, sans timestamps (timing is not state). *)
  bpf "journal{";
  List.iter
    (fun (e : System.journal_entry) ->
      bpf " %d:%s:%s:%s" e.System.handle e.System.operation
        (match e.System.dir with Some uid -> string_of_int (Uid.to_int uid) | None -> "-")
        (Option.value ~default:"-" e.System.entry_name))
    (System.crash_journal t.system);
  bpf " }\n";
  (* Taint accounting (the P3 state). *)
  bpf "taints alice{%s} bob{%s} s0{%s} s1{%s}\n"
    (render_labels t.alice_carried) (render_labels t.bob_carried) (render_labels t.s0_taints)
    (render_labels t.s1_taints);
  Buffer.contents b

let fingerprint canon = Digest.to_hex (Digest.string canon)

(* ----- The state predicates ----- *)

(* P1: no front may hold a descriptor granting a mode a fresh
   recomputation refuses.  More-restrictive staleness is a freshness
   bug, not a security one; the predicate is exactly "no stale
   Permit".  (PTW fronts carry no access bits — a stale PTW entry
   skips a page-table walk, never a mediation — so the SDW-bearing
   fronts are the ones walked.) *)
let stale_permit t ~where ~segno ~cached ~uid_opt ~subject =
  let hierarchy = System.hierarchy t.system in
  let fresh = Option.bind uid_opt (fun uid -> Hierarchy.sdw_for hierarchy ~subject ~uid) in
  let cached_mode = Sdw.mode cached in
  match fresh with
  | None ->
      if not (Mode.is_none cached_mode) then
        record t "P1-stale-permit"
          (Printf.sprintf "%s holds %s for dangling segno %d" where
             (Mode.to_string cached_mode) segno)
  | Some fresh ->
      if not (Mode.subset cached_mode (Sdw.mode fresh)) then
        record t "P1-stale-permit"
          (Printf.sprintf "%s grants %s on segno %d; fresh descriptor grants only %s" where
             (Mode.to_string cached_mode) segno (Mode.to_string (Sdw.mode fresh)))

let check_p1 t =
  List.iter
    (fun who ->
      let p = proc_of t who in
      let subject = System.subject_of p in
      List.iter
        (fun (segno, cached) ->
          stale_permit t
            ~where:(Printf.sprintf "%s's associative memory" (principal_name who))
            ~segno ~cached
            ~uid_opt:(Result.to_option (Kst.uid_of_segno p.System.kst segno))
            ~subject)
        (Hardware.Assoc.entries p.System.assoc))
    [ Alice; Bob ];
  for cpu = 0 to 1 do
    List.iter
      (fun (key, cached) ->
        let handle, segno = Smp.split_cam_key key in
        match System.proc t.system handle with
        | None ->
            if not (Mode.is_none (Sdw.mode cached)) then
              record t "P1-stale-permit"
                (Printf.sprintf "cpu %d CAM holds a grant for vanished process %d" cpu handle)
        | Some p ->
            stale_permit t
              ~where:(Printf.sprintf "cpu %d's CAM" cpu)
              ~segno ~cached
              ~uid_opt:(Result.to_option (Kst.uid_of_segno p.System.kst segno))
              ~subject:(System.subject_of p))
      (Smp.cam_entries t.plant ~cpu)
  done

(* P3: accumulated taints stay dominated — no interleaving of granted
   accesses moved information downward. *)
let check_p3 t =
  let hierarchy = System.hierarchy t.system in
  let object_check name uid taints =
    match Hierarchy.label_of hierarchy uid with
    | None -> ()
    | Some label ->
        List.iter
          (fun taint ->
            if not (Label.dominates label taint) then
              record t "P3-lattice-flow"
                (Printf.sprintf "%s (label %s) carries taint %s" name (Label.to_string label)
                   (Label.to_string taint)))
          taints
  in
  object_check "s0" t.s0 t.s0_taints;
  object_check "s1" t.s1 t.s1_taints;
  List.iter
    (fun who ->
      let clearance = level_of t who in
      List.iter
        (fun taint ->
          if not (Label.dominates clearance taint) then
            record t "P3-lattice-flow"
              (Printf.sprintf "%s (clearance %s) carries taint %s" (principal_name who)
                 (Label.to_string clearance) (Label.to_string taint)))
        (carried t who))
    [ Alice; Bob ]

(* P4: the compiled access-vector table must agree with the structured
   monitor on every subject x object x mode of the plant. *)
let check_p4 t =
  let hierarchy = System.hierarchy t.system in
  let permits = function Some Policy.Permit -> true | Some (Policy.Refuse _) | None -> false in
  List.iter
    (fun who ->
      let subject = System.subject_of (proc_of t who) in
      List.iter
        (fun (name, uid) ->
          List.iter
            (fun (mode_name, requested) ->
              let compiled = Hierarchy.check_access hierarchy ~subject ~uid ~requested in
              let structured = Hierarchy.check_access_fresh hierarchy ~subject ~uid ~requested in
              if permits compiled <> permits structured then
                record t "P4-av-parity"
                  (Printf.sprintf "%s x %s x %s: table says %b, structured monitor says %b"
                     (principal_name who) name mode_name (permits compiled)
                     (permits structured)))
            [ ("r", Mode.r); ("w", Mode.w); ("rw", Mode.rw) ])
        [ ("s0", t.s0); ("s1", t.s1) ])
    [ Alice; Bob ]

(* Run the state predicates; call only after [canonical] — P4's table
   probe may warm caches the capture must not see. *)
let check_state t =
  check_p1 t;
  check_p3 t;
  check_p4 t

(* The full per-trace verdict: replay, then predicates.  Violations
   come back oldest-first. *)
let violations_of_trace ~bug trace =
  let t = replay ~bug trace in
  let canon = canonical t in
  check_state t;
  (canon, List.rev t.violations)

(* ----- Bounded exhaustive exploration ----- *)

type counterexample = { trace : action list; violation : violation }

type depth_row = {
  row_depth : int;
  row_new_states : int;  (** states first reached at this depth *)
  row_states : int;  (** cumulative distinct states *)
  row_expansions : int;  (** replays executed at this depth *)
}

type outcome = {
  o_depth : int;
  o_bug : bool;
  o_states : int;
  o_expansions : int;
  o_rows : depth_row list;
  o_counterexamples : counterexample list;
      (** at most one per predicate — the first (shortest) trace found *)
}

let note_counterexample found trace violation =
  if not (List.exists (fun c -> c.violation.predicate = violation.predicate) !found) then
    found := !found @ [ { trace; violation } ]

let explore ?jobs ?(bug = false) ~depth () =
  let alpha = alphabet ~bug in
  let visited = Hashtbl.create 4096 in
  let found = ref [] in
  let canon, violations = violations_of_trace ~bug [] in
  Hashtbl.replace visited canon ();
  List.iter (fun v -> note_counterexample found [] v) violations;
  let frontier = ref [ [] ] in
  let rows = ref [] in
  let expansions = ref 0 in
  for d = 1 to depth do
    if !frontier <> [] then begin
      let candidates =
        List.concat_map (fun trace -> List.map (fun a -> trace @ [ a ]) alpha) !frontier
      in
      (* Expansion order must be a pure function of the frontier, not
         of the schedule: candidates are sorted, fanned out through the
         pool, and merged back in task order — byte-identical outcomes
         at any MULTICS_JOBS. *)
      let results = Par.map ?jobs (fun trace -> (trace, violations_of_trace ~bug trace)) candidates in
      expansions := !expansions + List.length candidates;
      List.iter
        (fun (trace, (_, violations)) ->
          List.iter (fun v -> note_counterexample found trace v) violations)
        results;
      (* A candidate joins the next frontier iff its state is new —
         unseen at any earlier depth and not already claimed by an
         earlier candidate of this level (BFS keeps the first, i.e.
         lexicographically least, trace per state). *)
      let next =
        List.filter_map
          (fun (trace, (canon, _)) ->
            if Hashtbl.mem visited canon then None
            else begin
              Hashtbl.replace visited canon ();
              Some trace
            end)
          results
      in
      frontier := next;
      rows :=
        {
          row_depth = d;
          row_new_states = List.length next;
          row_states = Hashtbl.length visited;
          row_expansions = List.length candidates;
        }
        :: !rows
    end
  done;
  {
    o_depth = depth;
    o_bug = bug;
    o_states = Hashtbl.length visited;
    o_expansions = !expansions;
    o_rows = List.rev !rows;
    o_counterexamples = !found;
  }

(* ----- Rendering ----- *)

let violation_to_string v = Printf.sprintf "%s: %s" v.predicate v.detail

let counterexample_script c =
  String.concat "\n"
    [
      "#!/bin/sh";
      Printf.sprintf "# %s" (violation_to_string c.violation);
      "# Replay the counterexample trace through the operator console";
      "# (the bug flag re-enables the deferred-connect window):";
      "dune exec bin/shell.exe <<'EOF'";
      Printf.sprintf "mc replay %s bug" (trace_to_string c.trace);
      "EOF";
      "";
    ]

let summary o =
  let b = Buffer.create 256 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  bpf "plant: 2 CPUs, 2 principals, 2 segments; alphabet of %d actions%s\n"
    (List.length (alphabet ~bug:o.o_bug))
    (if o.o_bug then " (deferred-connect bug enabled)" else "");
  bpf "  %5s  %12s  %12s  %12s\n" "depth" "expansions" "new states" "states";
  bpf "  %5d  %12s  %12s  %12d\n" 0 "-" "-" 1;
  List.iter
    (fun r ->
      bpf "  %5d  %12d  %12d  %12d\n" r.row_depth r.row_expansions r.row_new_states r.row_states)
    o.o_rows;
  bpf "  exhaustive to depth %d: %d distinct states, %d replays, %d violation%s\n" o.o_depth
    o.o_states o.o_expansions
    (List.length o.o_counterexamples)
    (if List.length o.o_counterexamples = 1 then "" else "s");
  List.iter
    (fun c ->
      bpf "  counterexample (depth %d): [%s]\n    %s\n" (List.length c.trace)
        (trace_to_string c.trace) (violation_to_string c.violation))
    o.o_counterexamples;
  Buffer.contents b

(* ----- Random traces (for the replay-determinism regression) ----- *)

let random_trace ~seed ~length =
  let prng = Prng.create_labeled ~seed ~label:"mc.trace" in
  let alpha = Array.of_list (alphabet ~bug:true) in
  List.init length (fun _ -> alpha.(Prng.int prng (Array.length alpha)))
