(** Bounded exhaustive model checking of the reference monitor.

    Enumerates, breadth-first, every interleaving (to a depth bound)
    of a small action alphabet on a 2-CPU / 2-segment / 2-principal
    plant, executing each action through the real kernel paths
    ([Api.Call.dispatch], the [Smp] connect protocol, the [Salvager])
    and checking four safety predicates at every reachable state:

    - {b P1 no stale Permit} — no SDW-bearing cache front (per-process
      associative memory, per-CPU CAM) may grant a mode a fresh
      [Hierarchy.sdw_for] recomputation refuses;
    - {b P2 fail-secure} — granted content accesses survive a fresh
      recomputation at grant time, faulted gate calls return errors,
      and a salvage leaves zero descriptor disagreements and an empty
      crash journal (the E15 invariant);
    - {b P3 no downward flow} — E10-style taint accounting over the
      granted accesses: no object accumulates a taint its label does
      not dominate, no subject a taint above its clearance;
    - {b P4 AV parity} — the compiled access-vector verdict equals the
      structured [Policy.check] recomputation for every subject x
      object x mode.

    A state is its trace: [System.t] has no snapshot, so states are
    canonically re-executed from a fresh boot, every action pushed
    into the simulator's event queue at the same firing time
    ([Event_queue]'s tie-order stability makes replay a pure function
    of the trace).  The visited set keys on the full canonical string;
    frontier expansion fans out through [Par.map] and merges in task
    order, so outcomes are byte-identical at any [MULTICS_JOBS].

    Experiment E21 drives this; the shell's [mc run]/[mc replay]
    commands expose it on the operator console. *)

(** {1 The plant and its alphabet} *)

type principal = Alice | Bob
(** Alice: unclassified, runs on CPU 0, owns both segments.  Bob:
    secret, runs on CPU 1. *)

type seg = S0 | S1
(** [S0] is secret (Bob may read, Alice may blind-write), [S1]
    unclassified (Bob may not write).  Both live in Alice's home. *)

type action =
  | Read of principal * seg
  | Write of principal * seg
  | Acl_revoke  (** s0's ACL back to owner-only: the revoking edit *)
  | Acl_grant  (** s0's ACL widened to owner + Bob rw *)
  | Bracket_widen  (** s0's ring brackets (4,4,4) -> (4,5,5) *)
  | Bracket_restore  (** s0's ring brackets back to user_data *)
  | Faulted_create
      (** a [gate.abort=nth:1] plan armed around a [Create_segment]:
          the mutation lands, the call is torn down and journaled *)
  | Salvage
  | Deliver of int  (** bug mode only: drain one CPU's queued connects *)

val alphabet : bug:bool -> action list
(** 14 actions; [~bug:true] adds the two [Deliver] actions that only
    exist while the deferred-connect bug is enabled. *)

val action_to_string : action -> string
val action_of_string : string -> action option

val trace_to_string : action list -> string
(** Comma-separated action names — the wire form [mc replay] takes. *)

val trace_of_string : string -> action list option

(** {1 Canonical re-execution} *)

type violation = { predicate : string; detail : string }

val violation_to_string : violation -> string

val violations_of_trace : bug:bool -> action list -> string * violation list
(** Boot a fresh plant, replay the trace through the simulator's event
    queue, capture the canonical state string, then run the state
    predicates.  Returns [(canonical, violations)] with violations in
    the order found (per-action P2/P3 first, then the state walk). *)

val fingerprint : string -> string
(** Digest of a canonical state string, for display and tests.  The
    visited set itself keys on the full string — no collision can
    merge two distinct states. *)

val random_trace : seed:int -> length:int -> action list
(** A seeded trace over the full (bug) alphabet — the replay
    determinism regression's generator. *)

(** {1 Bounded exhaustive exploration} *)

type counterexample = { trace : action list; violation : violation }

type depth_row = {
  row_depth : int;
  row_new_states : int;  (** states first reached at this depth *)
  row_states : int;  (** cumulative distinct states *)
  row_expansions : int;  (** replays executed at this depth *)
}

type outcome = {
  o_depth : int;
  o_bug : bool;
  o_states : int;
  o_expansions : int;
  o_rows : depth_row list;
  o_counterexamples : counterexample list;
      (** at most one per predicate — the first (therefore shortest)
          trace found, BFS order *)
}

val explore : ?jobs:int -> ?bug:bool -> depth:int -> unit -> outcome
(** Exhaustive breadth-first exploration to [depth].  [jobs] sizes the
    [Par.map] pool for frontier expansion (default [MULTICS_JOBS]);
    the outcome is identical at any pool size.  [bug] (default false)
    re-enables the pre-PR 5 deferred-connect stale-Permit window and
    extends the alphabet with [Deliver]. *)

val summary : outcome -> string
(** The states/depth/expansions table plus any counterexamples —
    deterministic (no wall-clock), so pool-size parity can compare
    summaries byte for byte. *)

val counterexample_script : counterexample -> string
(** The counterexample as a replayable shell script driving the
    operator console's [mc replay]. *)
