(** Processor cost models for the Honeywell 645 (software-simulated
    rings) and 6180 (hardware rings).  Absolute numbers are synthetic;
    the in-ring vs cross-ring *relation* is the modelled fact. *)

type processor = H645 | H6180

type t = {
  processor : processor;
  call_in_ring : int;
  call_cross_ring : int;
  return_in_ring : int;
  return_cross_ring : int;
  memory_reference : int;
  fault_overhead : int;
  process_switch : int;
  interrupt_entry : int;
  core_transfer : int;  (** cycles to move a page core <-> bulk store *)
  disk_transfer : int;  (** cycles to move a page bulk store <-> disk *)
  sdw_fetch : int;
      (** descriptor fetch charged on an SDW associative-memory miss *)
  ptw_fetch : int;  (** page-table walk charged on a PTW lookaside miss *)
  connect_ipi : int;
      (** signal a connect (inter-processor interrupt) to one other CPU
          and wait for its associative-memory-cleared acknowledgement *)
}

val h645 : t
val h6180 : t
val of_processor : processor -> t

val call_cost : t -> cross_ring:bool -> int
val return_cost : t -> cross_ring:bool -> int
val round_trip_call_cost : t -> cross_ring:bool -> int

val cross_ring_penalty : t -> float
(** Ratio of a cross-ring round trip to an in-ring round trip; ~100 on
    the 645, ~1 on the 6180. *)

val processor_name : processor -> string
val pp_processor : Format.formatter -> processor -> unit
