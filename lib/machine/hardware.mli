(** The hardware access check applied to every simulated reference. *)

type operation =
  | Read
  | Write
  | Execute  (** transfer of control without ring change *)
  | Call of int  (** call to the given entry offset (may cross rings) *)

type grant =
  | Access_ok
  | Gate_entry of Ring.t  (** inward call; execution continues in this ring *)

type denial =
  | Missing_permission of Mode.t
  | Outside_write_bracket
  | Outside_read_bracket
  | Outside_call_bracket
  | Not_a_gate of int
  | Outward_call

type decision = Granted of grant | Denied of denial

val check : Sdw.t -> ring:Ring.t -> operation:operation -> decision
(** Validate one reference from a process executing in [ring]. *)

val allowed : Sdw.t -> ring:Ring.t -> operation:operation -> bool

(** The per-process SDW associative memory (the 6180's 16-entry CAM).
    Sound only under immediate invalidation: every SDW change must reach
    {!Assoc.invalidate} or {!Assoc.flush} — the simulation wires this
    through the KST's on-change hook so "setfaults" semantics are
    preserved.  Obs counters live under ["cache.hw.assoc.*"]. *)
module Assoc : sig
  type t

  val create : ?capacity:int -> ?name:string -> unit -> t
  (** [capacity] defaults to 16, as on the 6180.  [name] (default
      ["hw.assoc"]) selects the obs counter family, so a per-CPU CAM
      can report under ["cache.smp.assoc.*"] instead. *)

  val lookup : t -> segno:int -> Sdw.t option
  val install : t -> segno:int -> Sdw.t -> unit
  val invalidate : t -> segno:int -> unit
  val flush : t -> unit
  val size : t -> int
  val hit_ratio : t -> float

  val counters : t -> (string * int) list
  (** The underlying cache's obs counter readings
      (["cache.hw.assoc.*"]). *)

  val entries : t -> (int * Sdw.t) list
  (** The (key, SDW) pairs that would currently hit; read-only, order
      unspecified.  For invariant checks — the model checker walks
      every front looking for a cached grant that a fresh descriptor
      recomputation would refuse. *)
end

val check_via_assoc :
  Assoc.t ->
  segno:int ->
  fetch:(unit -> Sdw.t option) ->
  ring:Ring.t ->
  operation:operation ->
  decision option
(** {!check} against the associative memory: on a hit the cached SDW is
    used; on a miss [fetch] loads the descriptor (charged as
    [Cost.sdw_fetch] by callers), which is installed before checking.
    [None] when [fetch] finds no descriptor. *)

val denial_to_string : denial -> string
val pp_operation : Format.formatter -> operation -> unit
val pp_decision : Format.formatter -> decision -> unit
