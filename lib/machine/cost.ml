(* Processor cost models.

   The paper's removal argument turns on one hardware fact: on the
   Honeywell 645 the protection rings were simulated in software, so a
   call that changed rings cost two orders of magnitude more than a
   call that did not; on the 6180 the rings are in hardware and "calls
   from one ring to another now cost no more than calls inside a ring".
   The absolute cycle numbers below are synthetic (we do not have the
   authors' testbed); what the model preserves is the *relation*
   between in-ring and cross-ring costs on each machine, which is all
   the paper's argument uses. *)

type processor = H645 | H6180

type t = {
  processor : processor;
  call_in_ring : int;  (** call + save + return sequence, same ring *)
  call_cross_ring : int;  (** call through a gate into another ring *)
  return_in_ring : int;
  return_cross_ring : int;
  memory_reference : int;  (** one validated read or write *)
  fault_overhead : int;  (** taking any fault into the supervisor *)
  process_switch : int;  (** dispatch a different process on the CPU *)
  interrupt_entry : int;  (** interceptor entry/exit on an interrupt *)
  core_transfer : int;  (** page move core <-> bulk store *)
  disk_transfer : int;  (** page move bulk store <-> disk *)
  sdw_fetch : int;  (** descriptor fetch on an associative-memory miss *)
  ptw_fetch : int;  (** page-table walk on a PTW lookaside miss *)
  connect_ipi : int;
      (** signal a connect (inter-processor interrupt) to one other CPU
          and wait for its associative-memory-cleared acknowledgement *)
}

(* On the 645, a cross-ring call trapped to a supervisor module that
   simulated the ring change: validated the gate, copied arguments,
   swapped descriptor segments.  Hundreds of instructions against ~20
   for a plain call. *)
let h645 =
  {
    processor = H645;
    call_in_ring = 20;
    call_cross_ring = 2_400;
    return_in_ring = 14;
    return_cross_ring = 1_800;
    memory_reference = 2;
    fault_overhead = 600;
    process_switch = 1_200;
    interrupt_entry = 350;
    core_transfer = 8_000;
    disk_transfer = 70_000;
    (* The 645's appending hardware was first-generation: a miss in its
       small associative memory meant a slow descriptor reload, partly
       assisted by supervisor software. *)
    sdw_fetch = 24;
    ptw_fetch = 8;
    (* The 645 had no connect instruction; a cross-processor signal
       went through a mailbox poll plus the full software interrupt
       path on the receiver. *)
    connect_ipi = 700;
  }

(* On the 6180 the appending unit checks brackets and gates on every
   reference: "calls from one ring to another now cost no more than
   calls inside a ring" — the cross-ring figures equal the in-ring
   ones. *)
let h6180 =
  {
    processor = H6180;
    call_in_ring = 20;
    call_cross_ring = 20;
    return_in_ring = 14;
    return_cross_ring = 14;
    memory_reference = 2;
    fault_overhead = 450;
    process_switch = 900;
    interrupt_entry = 250;
    core_transfer = 6_000;
    disk_transfer = 60_000;
    (* The 6180's 16-word associative memory refills straight from the
       descriptor/page-table words in core — a miss is cheap, and a hit
       costs nothing beyond the reference itself. *)
    sdw_fetch = 12;
    ptw_fetch = 4;
    (* The 6180's cioc ("connect i/o channel") raises a connect fault
       directly on the target processor; the receiver's handler only
       has to clear its associative memory and acknowledge. *)
    connect_ipi = 300;
  }

let of_processor = function H645 -> h645 | H6180 -> h6180

let call_cost t ~cross_ring = if cross_ring then t.call_cross_ring else t.call_in_ring

let return_cost t ~cross_ring = if cross_ring then t.return_cross_ring else t.return_in_ring

let round_trip_call_cost t ~cross_ring = call_cost t ~cross_ring + return_cost t ~cross_ring

let cross_ring_penalty t =
  float_of_int (round_trip_call_cost t ~cross_ring:true)
  /. float_of_int (round_trip_call_cost t ~cross_ring:false)

let processor_name = function H645 -> "H645" | H6180 -> "H6180"

let pp_processor ppf p = Fmt.string ppf (processor_name p)
