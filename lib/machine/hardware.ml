(* The full hardware access check: mode bits + ring brackets + gates.

   This is the innermost layer of the reference monitor; it validates
   every simulated memory reference against the SDW, exactly as the
   6180 appending unit does on each instruction.  Everything above
   (ACLs, the mandatory-access lattice) only decides what SDWs say;
   this module decides what a given SDW permits. *)

module Obs = Multics_obs.Obs

type operation = Read | Write | Execute | Call of int  (** entry offset *)

type grant =
  | Access_ok  (** read/write/execute in the current ring *)
  | Gate_entry of Ring.t  (** inward call; execution continues in this ring *)

type denial =
  | Missing_permission of Mode.t  (** mode bits lack the needed permission *)
  | Outside_write_bracket
  | Outside_read_bracket
  | Outside_call_bracket
  | Not_a_gate of int  (** inward call to a non-gate entry offset *)
  | Outward_call

type decision = Granted of grant | Denied of denial

let denial_to_string = function
  | Missing_permission m -> "missing permission " ^ Mode.to_string m
  | Outside_write_bracket -> "outside write bracket"
  | Outside_read_bracket -> "outside read bracket"
  | Outside_call_bracket -> "outside call bracket"
  | Not_a_gate off -> Printf.sprintf "entry %d is not a gate" off
  | Outward_call -> "outward call"

(* Observability: the hardware check is the innermost mediation point,
   so its counters are the ground truth every other layer's numbers
   must reconcile with. *)
let obs_checks = Obs.Local.counter "hw.checks"
let obs_denials = Obs.Local.counter "hw.denials"
let denial_label = function
  | Missing_permission _ -> "missing-permission"
  | Outside_write_bracket -> "write-bracket"
  | Outside_read_bracket -> "read-bracket"
  | Outside_call_bracket -> "call-bracket"
  | Not_a_gate _ -> "not-a-gate"
  | Outward_call -> "outward-call"

let observe decision =
  if Obs.enabled () then begin
    Obs.Counter.incr (obs_checks ());
    match decision with
    | Granted _ -> ()
    | Denied d ->
        Obs.Counter.incr (obs_denials ());
        Obs.Counter.incr (Obs.Registry.counter (Obs.Registry.global ()) ("hw.denials." ^ denial_label d))
  end;
  decision

let check sdw ~ring ~operation =
  observe
  @@
  let mode = Sdw.mode sdw in
  let brackets = Sdw.brackets sdw in
  match operation with
  | Read ->
      if not mode.Mode.read then Denied (Missing_permission Mode.r)
      else if Brackets.read_ok brackets ~ring then Granted Access_ok
      else Denied Outside_read_bracket
  | Write ->
      if not mode.Mode.write then Denied (Missing_permission Mode.w)
      else if Brackets.write_ok brackets ~ring then Granted Access_ok
      else Denied Outside_write_bracket
  | Execute -> (
      if not mode.Mode.execute then Denied (Missing_permission Mode.e)
      else
        match Brackets.transfer brackets ~ring with
        | Brackets.Execute_in_place -> Granted Access_ok
        | Brackets.Inward_call _ ->
            (* A plain transfer (not a call instruction) may not change
               rings: jumping inward without the gate discipline would
               bypass argument validation. *)
            Denied Outside_read_bracket
        | Brackets.Outward_call_fault -> Denied Outward_call
        | Brackets.Beyond_call_bracket -> Denied Outside_call_bracket)
  | Call entry_offset -> (
      if not mode.Mode.execute then Denied (Missing_permission Mode.e)
      else
        match Brackets.transfer brackets ~ring with
        | Brackets.Execute_in_place -> Granted Access_ok
        | Brackets.Inward_call target_ring ->
            if Sdw.is_gate_offset sdw entry_offset then Granted (Gate_entry target_ring)
            else Denied (Not_a_gate entry_offset)
        | Brackets.Outward_call_fault -> Denied Outward_call
        | Brackets.Beyond_call_bracket -> Denied Outside_call_bracket)

let allowed sdw ~ring ~operation =
  match check sdw ~ring ~operation with Granted _ -> true | Denied _ -> false

(* The per-process SDW associative memory — the 6180's 16-entry CAM
   that lets the appending unit skip the descriptor-segment fetch on
   repeated references.  Correctness leans entirely on invalidation:
   Multics "setfaults" clears these entries whenever a segment's
   attributes change, and our Kst/System wiring does the same through
   {!invalidate}/{!flush}, so a cached SDW always equals the SDW the
   descriptor segment currently holds. *)
module Assoc = struct
  type t = (int, Sdw.t) Multics_cache.Avc.t

  (* 16 entries, as on the 6180 appending unit. *)
  let create ?(capacity = 16) ?(name = "hw.assoc") () =
    Multics_cache.Avc.create ~capacity ~hash:(fun segno -> segno) ~equal:Int.equal ~name ()
  let lookup t ~segno = Multics_cache.Avc.find t segno
  let install t ~segno sdw = Multics_cache.Avc.add t ~obj:segno segno sdw
  let invalidate t ~segno = Multics_cache.Avc.invalidate_object t segno
  let flush t = Multics_cache.Avc.flush t
  let size t = Multics_cache.Avc.size t
  let hit_ratio t = Multics_cache.Avc.hit_ratio t
  let counters t = Multics_cache.Avc.counters t
  let entries t = Multics_cache.Avc.entries t
end

let check_via_assoc assoc ~segno ~fetch ~ring ~operation =
  match Assoc.lookup assoc ~segno with
  | Some sdw -> Some (check sdw ~ring ~operation)
  | None -> (
      match fetch () with
      | None -> None
      | Some sdw ->
          Assoc.install assoc ~segno sdw;
          Some (check sdw ~ring ~operation))

let pp_operation ppf = function
  | Read -> Fmt.string ppf "read"
  | Write -> Fmt.string ppf "write"
  | Execute -> Fmt.string ppf "execute"
  | Call off -> Fmt.pf ppf "call@%d" off

let pp_decision ppf = function
  | Granted Access_ok -> Fmt.string ppf "granted"
  | Granted (Gate_entry r) -> Fmt.pf ppf "granted via gate into %a" Ring.pp r
  | Denied d -> Fmt.pf ppf "denied (%s)" (denial_to_string d)
