(** A deterministic fleet of cooperating kernel sites with fail-secure
    cross-site revocation.

    Each site is a fully booted kernel ({!Multics_kernel.System});
    sites are joined pairwise by {!Multics_io.Network.Link}
    attachments.  Users are sharded to a home site by a deterministic
    function, and every request enters a kernel — local or remote —
    only through {!Multics_kernel.Api.Call.dispatch}, so cross-site
    traffic is audited and metered exactly like a local gate call.

    {b Replication model.}  Access-control state (the hierarchy's
    ACLs, labels, brackets, and the branch structure reached through
    the path-addressed gates) is replicated to every site; segment
    {e contents} and process state are home-local, like a shard owning
    its users' data.  A mutating call executes at the caller's home
    site and then broadcasts to every peer as a {e network connect}: a
    verbatim replay of the same request, under the same process
    handle, through the peer kernel's own [Api.Call.dispatch] — whose
    setfaults/AV-table machinery performs the remote invalidation.
    The broadcast completes before the mutating call returns
    (synchronous coherence, {!Multics_smp.Smp}'s discipline
    generalized over lossy links).  Replays land identically because
    boots, account creation, and logins are replicated
    deterministically, so every site holds the same handle space and
    the same access-control state.

    {b Failure model.}  Each link consults the [site.drop] /
    [site.delay] / [site.partition] fault sites and an
    operator-severed partition flag.  An unacknowledged connect is
    retried with exponential backoff up to {!Multics_smp.Smp.max_retries}
    losses; past the budget the origin {e fails secure}: it has
    stalled through the whole retry window (the mutation's completion
    window), and rather than let the silent peer serve decisions it
    cannot prove fresh, it marks the peer [Suspect] and fences its
    shard — every call homed there is refused with
    {!Multics_kernel.Api.Site_fenced} until the peer rejoins.  A
    fenced or crashed site serves {e nothing}: stale Permits are
    structurally impossible.  Rejoin is a salvage-and-resync
    handshake: Salvager rollback, replay of every missed epoch from
    the fleet's mutation backlog, a full AV-table rebuild, and a
    whole-site cache invalidation.

    Determinism: for a fixed (seed, plan, traffic) triple the fleet is
    reproducible, and mediation results are site-count-invariant —
    experiment E20's coherence-parity oracle checks a 1-site fleet
    against 2- and 4-site fleets under fault plans and requires zero
    divergences.  Site counts change timing (cross-site stalls,
    backoff, fencing cost), never verdicts. *)

module System = Multics_kernel.System
module Api = Multics_kernel.Api
module Salvager = Multics_kernel.Salvager

val max_sites : int

val default_nsites : unit -> int
(** [MULTICS_SITES] from the environment when it parses as
    1..{!max_sites}; 1 otherwise. *)

type status = Active | Suspect | Crashed

val status_name : status -> string

type rejoin_report = {
  rj_salvage : Salvager.report;  (** the rollback that opened the handshake *)
  rj_replayed : int;  (** backlog epochs replayed to catch up *)
  rj_av_cells : int;  (** cells filled by the full AV-table rebuild *)
  rj_epoch : int;  (** the site's epoch after resync (= fleet epoch) *)
}

type t

val create : ?nsites:int -> ?config:Multics_kernel.Config.t -> ?latency:int -> unit -> t
(** Boot [nsites] (default {!default_nsites}[ ()]) identical kernels
    and join them pairwise with links of the given one-way [latency]
    (cycles).  An operator principal is created and logged in on every
    site (same handle everywhere, by determinism of the boot).  Obs
    instruments: ["site.connects.sent"/".lost"/".retries"],
    ["site.fenced"], ["site.fenced.refusals"], ["site.rejoins"],
    ["site.replica.mismatch"], the ["site.revocation.cycles"]
    histogram, and the ["net.link.*"] family. *)

val nsites : t -> int
val operator : t -> int
(** The operator's process handle (valid on every site). *)

val member_system : t -> int -> System.t
(** Site [i]'s kernel, for direct inspection in tests and experiments.
    Mutating it other than through {!dispatch} forfeits replication. *)

val status : t -> int -> status
val epoch : t -> int
(** The fleet's mutation epoch: one per replicated mutation. *)

val site_epoch : t -> int -> int
(** The last epoch site [i] has applied; trails {!epoch} only while
    the site is fenced or crashed. *)

val now : t -> int
(** The fleet's cycle clock: every cross-site round trip, backoff
    stall, and fencing window is charged here. *)

val set_faults : t -> Multics_fault.Fault.Injector.t option -> unit
(** Install one injector on every link (the [site.*] sites) and every
    member kernel (the gate/cache sites), mirroring the Workload
    convention: one seeded plan drives the whole fleet. *)

(** {1 Sharding and accounts} *)

val home_site : t -> user:int -> int
(** The deterministic user→site sharding function. *)

val add_account :
  t -> person:string -> project:string -> password:string ->
  clearance:Multics_access.Label.t -> unit
(** Replicated to every active site (and to fenced sites at rejoin,
    via the backlog). *)

val login :
  ?level:Multics_access.Label.t ->
  t -> person:string -> project:string -> password:string ->
  (int, System.login_error) result
(** Replicated login: the same handle is allocated on every site,
    which is what lets a replicated mutation replay verbatim under the
    originator's handle. *)

val logout : t -> handle:int -> bool

(** {1 Dispatch} *)

val dispatch : t -> user:int -> handle:int -> Api.Call.request -> Api.Call.response
(** Route the request to [user]'s home site and dispatch it there
    through the audited gate surface.  If the home site is fenced
    (suspect) or crashed the call is refused with
    {!Api.Site_fenced} / {!Api.Site_unreachable} — the fail-secure
    degradation; nothing is served from a site that cannot prove its
    decisions fresh.  A successful path-addressed mutation (ACL,
    brackets, create, delete, salvage, cache-clear, channel creation)
    is broadcast to every peer before this call returns.
    Segment-number-addressed hierarchy mutations ([Set_acl],
    [Create_segment], ...) are refused at the fleet surface — their
    operands are process-local, so they cannot be replayed remotely;
    the path-addressed forms are the fleet calling sequence. *)

val dispatch_at : t -> site:int -> handle:int -> Api.Call.request -> Api.Call.response
(** Site-local dispatch with the fence applied but {e no replication}
    — the operator/test surface for probing one site.  Refuses when
    the site is not [Active]. *)

val probe :
  t -> site:int -> handle:int -> path:string ->
  requested:Multics_machine.Mode.t ->
  (Multics_access.Policy.verdict, Api.error) result
(** Resolve [path] on one site and run the real cached decision path
    there ([Probe_access] through the audited gates); fenced sites
    refuse.  The cross-site coherence check of the directed tests. *)

(** {1 Faults, partitions, crashes, rejoin} *)

val partition : t -> int -> int -> unit
(** Operator-sever the link between two sites ([site partition a b]). *)

val heal_link : t -> int -> int -> unit
val link_partitioned : t -> int -> int -> bool

val crash : t -> int -> unit
(** Take a site down: volatile state (every cached access decision) is
    lost; durable state (hierarchy, accounts, processes) survives as
    on disk.  The site serves nothing until {!rejoin}. *)

val rejoin : t -> int -> rejoin_report option
(** The salvage-and-resync handshake: Salvager rollback, backlog
    replay of every missed epoch, full AV-table rebuild, whole-site
    cache invalidation; the site returns to [Active].  [None] if the
    site was already active.  Rejoining across a still-severed link
    succeeds (the handshake is the operator's out-of-band channel) —
    but the next lost connect will fence the site again. *)

val heal_all : t -> int * (int * rejoin_report) list
(** [site heal]: heal every operator-severed link, then rejoin every
    fenced/crashed site.  Returns (links healed, rejoins performed). *)

(** {1 Fleet-wide accounting} *)

val signature : t -> int
(** Order-preserving djb2 digest of every primary dispatch
    ((user, operation, outcome) per call, fenced refusals included).
    The E20 parity oracle compares this across site counts. *)

val multiset_signature : t -> int
(** Commutative digest of the same records: a sum of per-record
    hashes, so it is invariant under reorderings of the dispatch
    sequence.  The parity handle for schedule-driven workloads
    (Workload sessions run under a scheduler whose interleaving shifts
    with cross-site timing); the sequential drivers compare the
    stronger {!signature}. *)

val granted : t -> int
val refused : t -> int
val fenced_refusals : t -> int
val revocations : t -> int
(** Replicated mutations that revoke (ACL/bracket edits, deletes,
    salvages, cache clears) — each one a fleet-wide connect storm. *)

val status_table : t -> (int * string * int * (string * int) list) list
(** Per-site rows [(id, status, epoch, counters)]: audit totals,
    replica applications and mismatches, process count — the
    [site status] shell payload. *)

val link_table : t -> ((int * int) * bool * (string * int) list) list
(** Per-link rows [((a, b), partitioned, counters)]. *)
