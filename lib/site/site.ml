(* The distributed fleet: N booted kernels joined over network links,
   with user→site sharding and fail-secure cross-site revocation.

   The design generalizes lib/smp's connect protocol over lossy links.
   On one plant, a descriptor change sends an IPI to every CPU and
   does not return until each has cleared its associative memory; in
   the fleet, an access-control mutation replays itself on every peer
   kernel — through the peer's own audited Api.Call.dispatch, whose
   setfaults/AV-table machinery IS the remote invalidation — and does
   not return until each peer acknowledged.  The same three invariants
   carry over:

   - {b Coherence is synchronous.}  The broadcast completes inside the
     mutating call.  There is no window in which the call has returned
     while a reachable peer can still serve a pre-mutation decision.

   - {b A lost connect fails secure.}  Links lose, delay and sever
     transmissions (site.drop / site.delay / site.partition fault
     sites, plus the operator's partition flag).  The origin stalls
     and retries with exponential backoff; past the retry budget it
     cannot confirm the remote invalidation, so it fences the silent
     peer: the peer is marked Suspect and every call homed on it is
     refused until a salvage-and-resync rejoin.  A fenced site serves
     nothing — the one thing it could serve wrongly is a stale Permit,
     and refusing everything is the only refusal that surely covers
     it.

   - {b Timing may change, results never.}  Site counts and fault
     plans move cycles (round trips, backoff stalls, fencing windows)
     but never verdicts: the mediation digest of an N-site run equals
     the 1-site run — experiment E20's coherence-parity oracle.

   Why replication can be verbatim replay: every site boots the same
   Config (identical skeleton and uids), and accounts/logins are
   replicated in fleet-epoch order, so every site allocates the same
   process handles with the same principals.  A path-addressed
   mutation names its object by tree name, not by any process-local
   segment number, so the same (handle, request) pair means the same
   thing on every site. *)

module Obs = Multics_obs.Obs
module Fault = Multics_fault.Fault
module Link = Multics_io.Network.Link
module Smp = Multics_smp.Smp
module System = Multics_kernel.System
module Api = Multics_kernel.Api
module Config = Multics_kernel.Config
module Audit_log = Multics_kernel.Audit_log
module User_env = Multics_kernel.User_env
module Salvager = Multics_kernel.Salvager
module Hierarchy = Multics_fs.Hierarchy
module Label = Multics_access.Label
module Policy = Multics_access.Policy
module Ring = Multics_machine.Ring

(* Site counts a deployment could plausibly ask for; anything else in
   MULTICS_SITES is ignored rather than crashing test startup. *)
let max_sites = 8

let default_nsites () =
  match Sys.getenv_opt "MULTICS_SITES" with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 && n <= max_sites -> n
      | Some _ | None -> 1)

type status = Active | Suspect | Crashed

let status_name = function
  | Active -> "active"
  | Suspect -> "suspect"
  | Crashed -> "crashed"

type rejoin_report = {
  rj_salvage : Salvager.report;
  rj_replayed : int;
  rj_av_cells : int;
  rj_epoch : int;
}

(* Everything a fenced site missed, in fleet-epoch order, so rejoin
   can replay it.  Logins and accounts ride the same log as gate
   mutations: handle allocation must replay in the one true order or
   the verbatim-replay property dies. *)
type op =
  | Gate of { handle : int; request : Api.Call.request }
  | Account of {
      person : string;
      project : string;
      password : string;
      clearance : Label.t;
    }
  | Login of {
      person : string;
      project : string;
      password : string;
      level : Label.t option;
    }
  | Logout of { handle : int }

type backlog_entry = { e_epoch : int; e_op : op }

type member = {
  id : int;
  system : System.t;
  mutable status : status;
  mutable epoch : int;  (** last fleet epoch this site has applied *)
  mutable applied : int;  (** replica operations applied here *)
  mutable mismatches : int;  (** replica replays that did not return Ok *)
}

type t = {
  nsites : int;
  members : member array;
  links : Link.t array array;  (** symmetric; diagonal unused *)
  operator : int;
  mutable epoch : int;
  mutable backlog : backlog_entry list;  (** newest first *)
  mutable clock : int;
  mutable digest : int;
  mutable msig : int;
  mutable granted : int;
  mutable refused : int;
  mutable fenced_refusals : int;
  mutable revocations : int;
}

(* ----- Observability ----- *)

let obs_connects_sent = Obs.Local.counter "site.connects.sent"
let obs_connects_lost = Obs.Local.counter "site.connects.lost"
let obs_connect_retries = Obs.Local.counter "site.connects.retries"
let obs_fenced = Obs.Local.counter "site.fenced"
let obs_fenced_refusals = Obs.Local.counter "site.fenced.refusals"
let obs_rejoins = Obs.Local.counter "site.rejoins"
let obs_replica_mismatch = Obs.Local.counter "site.replica.mismatch"
let obs_revocation_cycles = Obs.Local.histogram "site.revocation.cycles"
(* ----- Creation ----- *)

let create ?(nsites = default_nsites ()) ?(config = Config.kernel_6180) ?(latency = 1_000) () =
  if nsites < 1 || nsites > max_sites then
    invalid_arg (Printf.sprintf "Site.create: nsites must be in 1..%d" max_sites);
  let members =
    Array.init nsites (fun id ->
        {
          id;
          system = System.create config;
          status = Active;
          epoch = 0;
          applied = 0;
          mismatches = 0;
        })
  in
  let self = Link.create ~latency ~name:"self" () in
  let links = Array.make_matrix nsites nsites self in
  for a = 0 to nsites - 1 do
    for b = a + 1 to nsites - 1 do
      let link = Link.create ~latency ~name:(Printf.sprintf "%d-%d" a b) () in
      links.(a).(b) <- link;
      links.(b).(a) <- link
    done
  done;
  (* The operator logs in on every site before any fleet traffic, so
     its handle is part of the identical boot state (not the backlog). *)
  let operator =
    let handles =
      Array.map
        (fun m ->
          ignore
            (System.add_account m.system ~person:"Operator" ~project:"SysDaemon" ~password:"op"
               ~clearance:Label.unclassified);
          match System.login m.system ~person:"Operator" ~project:"SysDaemon" ~password:"op" with
          | Ok handle -> handle
          | Error e -> failwith ("Site.create: operator login: " ^ System.login_error_to_string e))
        members
    in
    Array.iter
      (fun h -> if h <> handles.(0) then failwith "Site.create: operator handles diverged")
      handles;
    handles.(0)
  in
  {
    nsites;
    members;
    links;
    operator;
    epoch = 0;
    backlog = [];
    clock = 0;
    digest = 5381;
    msig = 0;
    granted = 0;
    refused = 0;
    fenced_refusals = 0;
    revocations = 0;
  }

let nsites t = t.nsites
let operator t = t.operator
let member t i = if i < 0 || i >= t.nsites then invalid_arg "Site: no such site" else t.members.(i)
let member_system t i = (member t i).system
let status t i = (member t i).status
let epoch t = t.epoch
let site_epoch t i = (member t i).epoch
let now t = t.clock
let link_for t a b = t.links.(a).(b)

let set_faults t inj =
  Array.iter
    (fun m ->
      System.set_faults m.system inj;
      ignore m)
    t.members;
  for a = 0 to t.nsites - 1 do
    for b = a + 1 to t.nsites - 1 do
      Link.set_faults t.links.(a).(b) inj
    done
  done

(* ----- Sharding ----- *)

let home_site t ~user = ((user land max_int) mod t.nsites + t.nsites) mod t.nsites

(* ----- The replication classification -----

   Replicated: mutations of the fleet-wide access-control state (and
   the channel-id counter), all addressed by names that mean the same
   thing on every site.  Home-local: content references, process-local
   naming (initiate/terminate/KST state), inspection.  Refused at the
   fleet surface: hierarchy mutations addressed by process-local
   segment numbers — replaying them remotely would name a different
   object (or none), so the fleet calling sequence is the
   path-addressed form. *)

let replicates = function
  | Api.Call.Set_acl_by_path _ | Api.Call.Set_brackets_by_path _
  | Api.Call.Create_segment_by_path _ | Api.Call.Create_directory_by_path _
  | Api.Call.Delete_by_path _ | Api.Call.Create_channel | Api.Call.Salvage
  | Api.Call.Cache_clear ->
      true
  | _ -> false

let is_revocation = function
  | Api.Call.Set_acl_by_path _ | Api.Call.Set_brackets_by_path _ | Api.Call.Delete_by_path _
  | Api.Call.Salvage | Api.Call.Cache_clear ->
      true
  | _ -> false

let home_local_operands = function
  | Api.Call.Set_acl _ | Api.Call.Set_brackets _ | Api.Call.Set_gate_bound _
  | Api.Call.Set_quota _ | Api.Call.Create_segment _ | Api.Call.Create_directory _
  | Api.Call.Delete_entry _ | Api.Call.Rename_entry _ ->
      true
  | _ -> false

(* ----- Executing one request on one site -----

   The fleet's distribution layer is user-ring software, so it is
   configuration-blind the same way User_env is: by-path requests are
   composed from resolution (in the user ring, post-removal) plus the
   ordinary segment-number kernel gates.  Every kernel entry underneath
   is an audited, metered gate call — the distribution layer adds no
   new way into the kernel. *)

let ue_result ~ok = function
  | Ok v -> Ok (ok v)
  | Error (User_env.Api e) -> e |> Result.error
  | Error e -> Error (Api.Not_authorized (User_env.error_to_string e))

let exec system ~handle (request : Api.Call.request) : Api.Call.response =
  match request with
  | Api.Call.Create_segment_by_path { path; acl; label; brackets } ->
      ue_result
        ~ok:(fun n -> Api.Call.Segno n)
        (User_env.create_segment_at ?brackets system ~handle ~path ~acl ~label)
  | Api.Call.Create_directory_by_path { path; acl; label } ->
      ue_result
        ~ok:(fun n -> Api.Call.Segno n)
        (User_env.create_directory_at system ~handle ~path ~acl ~label)
  | Api.Call.Delete_by_path { path } ->
      ue_result ~ok:(fun () -> Api.Call.Done) (User_env.delete_at system ~handle ~path)
  | Api.Call.Resolve_path { path } ->
      ue_result ~ok:(fun n -> Api.Call.Segno n) (User_env.resolve_path system ~handle ~path)
  | Api.Call.Set_acl_by_path { path; acl } -> (
      match User_env.resolve_path system ~handle ~path with
      | Error (User_env.Api e) -> Error e
      | Error e -> Error (Api.Not_authorized (User_env.error_to_string e))
      | Ok segno -> Api.Call.dispatch system ~handle (Api.Call.Set_acl { segno; acl }))
  | Api.Call.Set_brackets_by_path { path; brackets } -> (
      match User_env.resolve_path system ~handle ~path with
      | Error (User_env.Api e) -> Error e
      | Error e -> Error (Api.Not_authorized (User_env.error_to_string e))
      | Ok segno -> Api.Call.dispatch system ~handle (Api.Call.Set_brackets { segno; brackets }))
  | request -> Api.Call.dispatch system ~handle request

(* ----- Applying operations to one site ----- *)

let apply_op t m = function
  | Gate { handle; request } -> (
      m.applied <- m.applied + 1;
      match exec m.system ~handle request with
      | Ok _ -> ()
      | Error _ ->
          (* Replicas hold identical access-control state, so a replay
             refusing where the primary granted is a coherence bug —
             surfaced through obs, caught by the parity oracle. *)
          m.mismatches <- m.mismatches + 1;
          Obs.Counter.incr (obs_replica_mismatch ());
          ignore t)
  | Account { person; project; password; clearance } ->
      ignore (System.add_account m.system ~person ~project ~password ~clearance)
  | Login { person; project; password; level } ->
      ignore (System.login ?level m.system ~person ~project ~password)
  | Logout { handle } -> ignore (System.logout m.system ~handle)

(* Drop backlog entries every site has applied; while the whole fleet
   is healthy the backlog stays empty. *)
let compact t =
  let floor = Array.fold_left (fun acc (m : member) -> min acc m.epoch) t.epoch t.members in
  if floor >= t.epoch then t.backlog <- []
  else t.backlog <- List.filter (fun e -> e.e_epoch > floor) t.backlog

(* Log one replicated op at a fresh epoch; the origin (when given) has
   already applied it as the primary. *)
let log_op t ?origin op =
  t.epoch <- t.epoch + 1;
  t.backlog <- { e_epoch = t.epoch; e_op = op } :: t.backlog;
  (match origin with Some id -> t.members.(id).epoch <- t.epoch | None -> ());
  t.epoch

(* ----- The cross-site connect -----

   lib/smp's delivery state machine (Smp.Connect.deliver) over a lossy
   link.  The acknowledgement timeout is a few link round trips, and
   each retry backs off exponentially — a congested fleet must not add
   connect storms to its own congestion.  Escalation is the fail-secure
   branch: fence the peer. *)

let ack_timeout link = 4 * Link.latency link

let deliver_to_peer t ~entry_epoch ~origin peer op =
  let link = link_for t origin peer.id in
  if Obs.enabled () then Obs.Counter.incr (obs_connects_sent ());
  let outcome =
    Smp.Connect.deliver ~max_retries:Smp.max_retries
      ~attempt:(fun n ->
        match Link.transmit link with
        | Link.Delivered { cycles } ->
            apply_op t peer op;
            peer.epoch <- entry_epoch;
            `Acked cycles
        | Link.Dropped { cycles } | Link.Severed { cycles } ->
            (* No acknowledgement: stall out the timeout, back off,
               re-signal.  Never proceed — proceeding would leave the
               peer's compiled decisions stale. *)
            if Obs.enabled () then begin
              Obs.Counter.incr (obs_connects_lost ());
              Obs.Counter.incr (obs_connect_retries ())
            end;
            `Lost (cycles + (ack_timeout link * (1 lsl min (n - 1) 8))))
      ~escalate:(fun () ->
        (* The peer would not acknowledge within the budget.  The one
           safe degradation is to take its shard out of service: mark
           it suspect and fence it until salvage-and-resync. *)
        peer.status <- Suspect;
        if Obs.enabled () then Obs.Counter.incr (obs_fenced ());
        0)
  in
  Smp.Connect.cycles_of outcome

let broadcast t ~origin ~handle request =
  let entry_epoch = log_op t ~origin (Gate { handle; request }) in
  if is_revocation request then t.revocations <- t.revocations + 1;
  let cycles = ref 0 in
  Array.iter
    (fun peer ->
      if peer.id <> origin && peer.status = Active then
        cycles := !cycles + deliver_to_peer t ~entry_epoch ~origin peer (Gate { handle; request }))
    t.members;
  t.clock <- t.clock + !cycles;
  if Obs.enabled () then Obs.Histogram.observe (obs_revocation_cycles ()) !cycles

(* Control-plane replication (accounts, logins, logouts): applied on
   every active site reliably — the answering service speaks over its
   own hardened channel — but still logged at a fleet epoch so fenced
   sites replay it in order at rejoin. *)
let control_plane t op =
  ignore (log_op t op);
  Array.iter (fun m -> if m.status = Active then apply_op t m op) t.members;
  compact t

(* ----- Accounts and logins ----- *)

let add_account t ~person ~project ~password ~clearance =
  control_plane t (Account { person; project; password; clearance })

let login ?level t ~person ~project ~password =
  (* Authenticate against one active site first; only a successful
     login becomes a replicated epoch. *)
  match Array.find_opt (fun m -> m.status = Active) t.members with
  | None -> failwith "Site.login: no active site"
  | Some probe -> (
      match System.login ?level probe.system ~person ~project ~password with
      | Error _ as e -> e
      | Ok handle ->
          ignore (log_op t (Login { person; project; password; level }));
          t.members.(probe.id).epoch <- t.epoch;
          Array.iter
            (fun m ->
              if m.status = Active && m.id <> probe.id then
                match System.login ?level m.system ~person ~project ~password with
                | Ok h when h = handle -> m.epoch <- t.epoch
                | Ok _ -> failwith "Site.login: handle spaces diverged"
                | Error e -> failwith ("Site.login: replica login: " ^ System.login_error_to_string e))
            t.members;
          compact t;
          Ok handle)

let logout t ~handle =
  let any = ref false in
  ignore (log_op t (Logout { handle }));
  Array.iter
    (fun m ->
      if m.status = Active then begin
        let ok = System.logout m.system ~handle in
        any := !any || ok;
        m.epoch <- t.epoch
      end)
    t.members;
  compact t;
  !any

(* ----- The fleet digest -----

   One entry per primary dispatch (fenced refusals included), folded
   in driver order through djb2.  The E20 oracle compares the digest
   of an N-site run against the 1-site run: equal digests <=> the
   fleet surface returned the same outcomes to the same users. *)

let hash_string init s =
  let h = ref init in
  String.iter (fun c -> h := ((!h * 33) + Char.code c) land 0x3FFF_FFFF) s;
  (!h * 33) land 0x3FFF_FFFF

(* Two digests over the same per-dispatch records.  [digest] is
   order-preserving — the lockstep drivers (site_test, E20's oracle
   loop) fold the exact sequence.  [msig] is a commutative sum of
   per-record hashes: the multiset digest, invariant under the
   schedule reorderings a Sim-driven workload introduces when site
   counts move timing, and O(1) memory at any population. *)
let fold_digest t s =
  t.digest <- hash_string t.digest s;
  t.msig <- (t.msig + hash_string 5381 s) land 0x3FFF_FFFF

let verdict_str = function
  | Policy.Permit -> "permit"
  | Policy.Refuse refusals ->
      "refuse:" ^ String.concat "+" (List.map Policy.refusal_to_string refusals)

let reply_str : Api.Call.reply -> string = function
  | Api.Call.Done -> "done"
  | Api.Call.Segno n -> "segno:" ^ string_of_int n
  | Api.Call.Word v -> "word:" ^ string_of_int v
  | Api.Call.Message m -> "msg:" ^ (match m with None -> "-" | Some v -> string_of_int v)
  | Api.Call.Names ns -> "names:" ^ String.concat "," ns
  | Api.Call.Status s -> "status:" ^ s.Api.status_name
  | Api.Call.Links l -> "links:" ^ string_of_int (List.length l)
  | Api.Call.Snapped { segno; offset } -> Printf.sprintf "snapped:%d:%d" segno offset
  | Api.Call.Entered ring -> "ring:" ^ string_of_int (Ring.to_int ring)
  | Api.Call.Channel c -> "chan:" ^ string_of_int c
  | Api.Call.Consumed b -> "consumed:" ^ string_of_bool b
  | Api.Call.Process h -> "proc:" ^ string_of_int h
  | Api.Call.Processes hs -> "procs:" ^ string_of_int (List.length hs)
  | Api.Call.Info i -> "info:" ^ i.Api.info_principal
  | Api.Call.Fault_report _ -> "fault_report"
  | Api.Call.Salvaged _ -> "salvaged"
  | Api.Call.Probed v -> "probed:" ^ verdict_str v
  | Api.Call.Cache_report _ -> "cache_report"
  | Api.Call.Sched_report _ -> "sched_report"
  | Api.Call.Smp_report _ -> "smp_report"

let record_primary t ~user ~request (resp : Api.Call.response) =
  let op = Api.Call.operation_name t.members.(0).system request in
  let outcome =
    match resp with Ok reply -> "ok:" ^ reply_str reply | Error e -> "err:" ^ Api.error_to_string e
  in
  (match resp with Ok _ -> t.granted <- t.granted + 1 | Error _ -> t.refused <- t.refused + 1);
  fold_digest t (Printf.sprintf "u%d|%s|%s" user op outcome)

(* ----- Dispatch ----- *)

let fence_refusal t site err =
  t.fenced_refusals <- t.fenced_refusals + 1;
  if Obs.enabled () then Obs.Counter.incr (obs_fenced_refusals ());
  ignore site;
  Error err

let dispatch t ~user ~handle request =
  let home = home_site t ~user in
  let m = t.members.(home) in
  let resp =
    match m.status with
    | Suspect -> fence_refusal t home (Api.Site_fenced { site = home })
    | Crashed -> fence_refusal t home (Api.Site_unreachable { site = home })
    | Active ->
        if home_local_operands request then
          Error
            (Api.Not_authorized
               "fleet: segment-number-addressed mutations are process-local; use the \
                path-addressed gate")
        else begin
          let resp = exec m.system ~handle request in
          (match resp with
          | Ok _ when replicates request -> broadcast t ~origin:home ~handle request
          | _ -> ());
          resp
        end
  in
  record_primary t ~user ~request resp;
  resp

let dispatch_at t ~site ~handle request =
  let m = member t site in
  match m.status with
  | Suspect ->
      t.fenced_refusals <- t.fenced_refusals + 1;
      if Obs.enabled () then Obs.Counter.incr (obs_fenced_refusals ());
      Error (Api.Site_fenced { site })
  | Crashed ->
      t.fenced_refusals <- t.fenced_refusals + 1;
      if Obs.enabled () then Obs.Counter.incr (obs_fenced_refusals ());
      Error (Api.Site_unreachable { site })
  | Active -> exec m.system ~handle request

let probe t ~site ~handle ~path ~requested =
  match dispatch_at t ~site ~handle (Api.Call.Resolve_path { path }) with
  | Error e -> Error e
  | Ok (Api.Call.Segno segno) -> (
      match dispatch_at t ~site ~handle (Api.Call.Probe_access { segno; requested }) with
      | Ok (Api.Call.Probed verdict) -> Ok verdict
      | Error e -> Error e
      | Ok _ -> invalid_arg "Site.probe: mismatched reply")
  | Ok _ -> invalid_arg "Site.probe: mismatched reply"

(* ----- Partitions, crashes, rejoin ----- *)

let check_pair t a b =
  if a < 0 || a >= t.nsites || b < 0 || b >= t.nsites || a = b then
    invalid_arg "Site: bad site pair"

let partition t a b =
  check_pair t a b;
  Link.partition (link_for t a b)

let heal_link t a b =
  check_pair t a b;
  Link.heal (link_for t a b)

let link_partitioned t a b =
  check_pair t a b;
  Link.partitioned (link_for t a b)

let crash t i =
  let m = member t i in
  (* Volatile state dies with the site: every cached decision, every
     associative memory.  Durable state (hierarchy, accounts,
     processes-as-records) survives as on disk. *)
  System.invalidate_caches m.system;
  m.status <- Crashed

let rejoin t i =
  let m = member t i in
  match m.status with
  | Active -> None
  | Suspect | Crashed ->
      (* 1. Salvage: roll back anything half-made, drop dangling KST
         entries, repair descriptors against policy — revoke-only. *)
      let rj_salvage =
        match Api.Call.dispatch m.system ~handle:t.operator Api.Call.Salvage with
        | Ok (Api.Call.Salvaged report) -> report
        | Ok _ | Error _ -> failwith "Site.rejoin: salvage failed"
      in
      (* 2. Epoch catch-up: replay every mutation the site missed, in
         fleet order. *)
      let missed = List.filter (fun e -> e.e_epoch > m.epoch) (List.rev t.backlog) in
      List.iter (fun e -> apply_op t m e.e_op) missed;
      m.epoch <- t.epoch;
      (* 3. Full AV-table rebuild plus a whole-site invalidation: the
         site re-enters service with no decision older than the
         handshake. *)
      let rj_av_cells = Hierarchy.rebuild_av_table (System.hierarchy m.system) in
      System.invalidate_caches m.system;
      m.status <- Active;
      if Obs.enabled () then Obs.Counter.incr (obs_rejoins ());
      compact t;
      Some { rj_salvage; rj_replayed = List.length missed; rj_av_cells; rj_epoch = m.epoch }

let heal_all t =
  let healed = ref 0 in
  for a = 0 to t.nsites - 1 do
    for b = a + 1 to t.nsites - 1 do
      if Link.partitioned t.links.(a).(b) then begin
        Link.heal t.links.(a).(b);
        incr healed
      end
    done
  done;
  let rejoined = ref [] in
  Array.iter
    (fun m ->
      match rejoin t m.id with
      | Some report -> rejoined := (m.id, report) :: !rejoined
      | None -> ())
    t.members;
  (!healed, List.rev !rejoined)

(* ----- Fleet-wide accounting ----- *)

let signature t = t.digest
let multiset_signature t = t.msig
let granted t = t.granted
let refused t = t.refused
let fenced_refusals t = t.fenced_refusals
let revocations t = t.revocations

let status_table t =
  Array.to_list
    (Array.map
       (fun m ->
         let audit = System.audit m.system in
         let counters =
           [
             ("audit.records", Audit_log.length audit);
             ("audit.refused", Audit_log.refusal_count audit);
             ("processes", System.process_count m.system);
             ("replica.applied", m.applied);
             ("replica.mismatch", m.mismatches);
           ]
         in
         (m.id, status_name m.status, m.epoch, counters))
       t.members)

let link_table t =
  let rows = ref [] in
  for a = t.nsites - 1 downto 0 do
    for b = t.nsites - 1 downto a + 1 do
      let link = t.links.(a).(b) in
      rows := ((a, b), Link.partitioned link, Link.counters link) :: !rows
    done
  done;
  !rows
