(** Typed parsers for the shell's operator-command families ([fault],
    [cache], [sched], [smp], [jobs], [site], [stats], [audit], [mc],
    [spec]).

    Each family is a total function from a word list to either a typed
    command or a typed error (in the style of the kernel's own
    [Bad_tune]): every malformed input gets a specific, named
    rejection carrying the usage line — nothing falls through an
    unmatched arm or raises out of the shell's read loop.  Validation
    runs at the parser, before any gate is consulted: a bad fault-plan
    spec or an unknown tuning parameter is refused with a reason
    instead of travelling into the kernel as a string. *)

module Command : sig
  type stats_mode = Stats_text | Stats_json | Stats_reset

  type t =
    | Fault_plan of { seed : int; spec : string }
    | Fault_status
    | Fault_clear
    | Cache_status
    | Cache_clear
    | Sched_status
    | Sched_tune of { param : string; value : int }
    | Sched_demo of { users : int }
    | Smp_status
    | Jobs_status
    | Site_status
    | Site_partition of { a : int; b : int }
    | Site_heal
    | Stats of stats_mode
    | Audit_tail of { count : int }
    | Mc_run of { depth : int; bug : bool }
        (** bounded exhaustive exploration; depth is validated 1..8 *)
    | Mc_status
    | Mc_replay of { trace : string; bug : bool }
        (** the trace is validated against the checker's alphabet at
            parse time, then re-parsed by the executor *)
    | Spec_profile_start  (** begin recording the per-gate dispatch counters *)
    | Spec_profile_stop of { name : string }
        (** snapshot the recording into a named gate-usage profile *)
    | Spec_apply  (** compile the captured profile and install its gate mask *)
    | Spec_clear  (** restore the full gate surface *)
    | Spec_status  (** the installed mask and the captured profile *)

  type error =
    | Bad_int of { what : string; got : string; usage : string }
    | Bad_subcommand of { family : string; got : string; usage : string }
    | Bad_arity of { family : string; usage : string }
    | Bad_param of { param : string; known : string list; usage : string }
    | Bad_plan of { spec : string; reason : string }
    | Bad_count of { what : string; got : int; usage : string }
    | Bad_pair of { family : string; reason : string; usage : string }
    | Bad_range of { what : string; got : int; lo : int; hi : int; usage : string }
    | Bad_trace of { got : string; usage : string }

  val error_to_string : error -> string

  val tune_params : string list
  (** The tuning parameters the traffic controller accepts. *)

  val parse : string list -> (t, error) result option
  (** [None]: the word list is not an operator-family command (the
      shell's other parsers own it). *)

  val of_line : string -> (t, error) result option
  (** {!parse} after whitespace splitting. *)
end
