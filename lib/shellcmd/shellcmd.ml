(* Typed parsers for the shell's operator-command families.

   The shell's original parsers grew ad hoc: each family matched its
   own word list and called [int_of_string_opt] (or didn't), so a
   malformed line could take an arm that silently fell through — or,
   for inputs nobody had tried, raise straight out of [execute].  This
   module makes the operator families total functions from a word list
   to either a typed command or a typed error: every malformed input
   has a specific, named rejection with the usage line attached, in
   the style of the kernel's own [Bad_tune].  Validation happens at
   the parser, before any gate is consulted — a bad fault-plan spec or
   an unknown tuning parameter is refused with a reason instead of
   travelling into the kernel as a string. *)

module Fault = Multics_fault.Fault
module Mc = Multics_mc.Mc

module Command = struct
  type stats_mode = Stats_text | Stats_json | Stats_reset

  type t =
    | Fault_plan of { seed : int; spec : string }
    | Fault_status
    | Fault_clear
    | Cache_status
    | Cache_clear
    | Sched_status
    | Sched_tune of { param : string; value : int }
    | Sched_demo of { users : int }
    | Smp_status
    | Jobs_status
    | Site_status
    | Site_partition of { a : int; b : int }
    | Site_heal
    | Stats of stats_mode
    | Audit_tail of { count : int }
    | Mc_run of { depth : int; bug : bool }
    | Mc_status
    | Mc_replay of { trace : string; bug : bool }
    | Spec_profile_start
    | Spec_profile_stop of { name : string }
    | Spec_apply
    | Spec_clear
    | Spec_status

  type error =
    | Bad_int of { what : string; got : string; usage : string }
    | Bad_subcommand of { family : string; got : string; usage : string }
    | Bad_arity of { family : string; usage : string }
    | Bad_param of { param : string; known : string list; usage : string }
    | Bad_plan of { spec : string; reason : string }
    | Bad_count of { what : string; got : int; usage : string }
    | Bad_pair of { family : string; reason : string; usage : string }
    | Bad_range of { what : string; got : int; lo : int; hi : int; usage : string }
    | Bad_trace of { got : string; usage : string }

  let error_to_string = function
    | Bad_int { what; got; usage } ->
        Printf.sprintf "%s: not a number: %s (usage: %s)" what got usage
    | Bad_subcommand { family; got; usage } ->
        Printf.sprintf "%s: unknown subcommand %S (usage: %s)" family got usage
    | Bad_arity { family; usage } -> Printf.sprintf "%s: usage: %s" family usage
    | Bad_param { param; known; usage } ->
        Printf.sprintf "unknown parameter %S (known: %s; usage: %s)" param
          (String.concat " | " known) usage
    | Bad_plan { spec; reason } -> Printf.sprintf "bad fault plan %S: %s" spec reason
    | Bad_count { what; got; usage } ->
        Printf.sprintf "%s: must be positive, got %d (usage: %s)" what got usage
    | Bad_pair { family; reason; usage } ->
        Printf.sprintf "%s: %s (usage: %s)" family reason usage
    | Bad_range { what; got; lo; hi; usage } ->
        Printf.sprintf "%s: %d out of range %d..%d (usage: %s)" what got lo hi usage
    | Bad_trace { got; usage } ->
        Printf.sprintf "unknown action %S in trace (usage: %s)" got usage

  let usage_fault = "fault plan SEED SPEC | fault status | fault clear"
  let usage_cache = "cache status | cache clear"
  let usage_sched = "sched status | sched tune PARAM VALUE | sched demo [USERS]"
  let usage_smp = "smp status"
  let usage_jobs = "jobs status"
  let usage_site = "site status | site partition A B | site heal"
  let usage_stats = "stats [json|reset]"
  let usage_audit = "audit [N]"
  let usage_mc = "mc run DEPTH [bug] | mc status | mc replay TRACE [bug]"

  let usage_spec =
    "spec profile start | spec profile stop NAME | spec apply | spec clear | spec status"

  (* Depth 8 is the checker's own ceiling (MULTICS_MC_DEPTH clamps
     there too); beyond it a console run would not come back. *)
  let mc_depth_max = 8

  (* The tuning parameters the traffic controller accepts; kept here so
     a typo is refused with the list instead of a round trip through
     the gate. *)
  let tune_params = [ "cap"; "quantum"; "age_after" ]

  let int_arg ~what ~usage s k =
    match int_of_string_opt s with
    | Some n -> k n
    | None -> Error (Bad_int { what; got = s; usage })

  let positive ~what ~usage n k =
    if n > 0 then k n else Error (Bad_count { what; got = n; usage })

  let parse_fault = function
    | [ "plan"; seed; spec ] ->
        int_arg ~what:"fault plan seed" ~usage:usage_fault seed (fun seed ->
            (* Validate the spec before it travels anywhere: a bad site
               name or schedule is a parse error, not a gate call. *)
            match Fault.Plan.parse ~seed spec with
            | Ok _ -> Ok (Fault_plan { seed; spec })
            | Error reason -> Error (Bad_plan { spec; reason }))
    | [ "status" ] -> Ok Fault_status
    | [ "clear" ] -> Ok Fault_clear
    | sub :: _ when sub <> "plan" ->
        Error (Bad_subcommand { family = "fault"; got = sub; usage = usage_fault })
    | _ -> Error (Bad_arity { family = "fault"; usage = usage_fault })

  let parse_cache = function
    | [ "status" ] -> Ok Cache_status
    | [ "clear" ] -> Ok Cache_clear
    | sub :: _ -> Error (Bad_subcommand { family = "cache"; got = sub; usage = usage_cache })
    | [] -> Error (Bad_arity { family = "cache"; usage = usage_cache })

  let parse_sched = function
    | [ "status" ] -> Ok Sched_status
    | [ "tune"; param; value ] ->
        if not (List.mem param tune_params) then
          Error (Bad_param { param; known = tune_params; usage = usage_sched })
        else
          int_arg ~what:"sched tune value" ~usage:usage_sched value (fun value ->
              Ok (Sched_tune { param; value }))
    | [ "demo" ] -> Ok (Sched_demo { users = 8 })
    | [ "demo"; users ] ->
        int_arg ~what:"sched demo users" ~usage:usage_sched users (fun users ->
            positive ~what:"sched demo users" ~usage:usage_sched users (fun users ->
                Ok (Sched_demo { users })))
    | sub :: _ when sub <> "tune" && sub <> "demo" ->
        Error (Bad_subcommand { family = "sched"; got = sub; usage = usage_sched })
    | _ -> Error (Bad_arity { family = "sched"; usage = usage_sched })

  let parse_smp = function
    | [ "status" ] -> Ok Smp_status
    | sub :: _ -> Error (Bad_subcommand { family = "smp"; got = sub; usage = usage_smp })
    | [] -> Error (Bad_arity { family = "smp"; usage = usage_smp })

  let parse_jobs = function
    | [ "status" ] -> Ok Jobs_status
    | sub :: _ -> Error (Bad_subcommand { family = "jobs"; got = sub; usage = usage_jobs })
    | [] -> Error (Bad_arity { family = "jobs"; usage = usage_jobs })

  let parse_site = function
    | [ "status" ] -> Ok Site_status
    | [ "heal" ] -> Ok Site_heal
    | [ "partition"; a; b ] ->
        int_arg ~what:"site partition a" ~usage:usage_site a (fun a ->
            int_arg ~what:"site partition b" ~usage:usage_site b (fun b ->
                (* Range (against the fleet's size) is the executor's
                   to check; shape is ours: two distinct, non-negative
                   site ids. *)
                if a < 0 || b < 0 then
                  Error
                    (Bad_pair
                       {
                         family = "site partition";
                         reason = "site ids must be non-negative";
                         usage = usage_site;
                       })
                else if a = b then
                  Error
                    (Bad_pair
                       {
                         family = "site partition";
                         reason = "cannot partition a site from itself";
                         usage = usage_site;
                       })
                else Ok (Site_partition { a; b })))
    | sub :: _ when sub <> "partition" ->
        Error (Bad_subcommand { family = "site"; got = sub; usage = usage_site })
    | _ -> Error (Bad_arity { family = "site"; usage = usage_site })

  let parse_stats = function
    | [] -> Ok (Stats Stats_text)
    | [ "json" ] -> Ok (Stats Stats_json)
    | [ "reset" ] -> Ok (Stats Stats_reset)
    | sub :: _ -> Error (Bad_subcommand { family = "stats"; got = sub; usage = usage_stats })

  let parse_audit = function
    | [] -> Ok (Audit_tail { count = 10 })
    | [ n ] ->
        int_arg ~what:"audit count" ~usage:usage_audit n (fun count ->
            positive ~what:"audit count" ~usage:usage_audit count (fun count ->
                Ok (Audit_tail { count })))
    | _ -> Error (Bad_arity { family = "audit"; usage = usage_audit })

  let parse_mc = function
    | "run" :: depth :: rest when rest = [] || rest = [ "bug" ] ->
        int_arg ~what:"mc run depth" ~usage:usage_mc depth (fun depth ->
            if depth < 1 || depth > mc_depth_max then
              Error
                (Bad_range
                   { what = "mc run depth"; got = depth; lo = 1; hi = mc_depth_max; usage = usage_mc })
            else Ok (Mc_run { depth; bug = rest = [ "bug" ] }))
    | [ "status" ] -> Ok Mc_status
    | "replay" :: trace :: rest when rest = [] || rest = [ "bug" ] -> (
        (* Validate the trace before it travels anywhere: an unknown
           action name is a parse error, not a checker failure. *)
        match Mc.trace_of_string trace with
        | Some _ -> Ok (Mc_replay { trace; bug = rest = [ "bug" ] })
        | None ->
            let bad =
              String.split_on_char ',' trace
              |> List.map String.trim
              |> List.find_opt (fun w -> Mc.action_of_string w = None)
            in
            Error (Bad_trace { got = Option.value bad ~default:trace; usage = usage_mc }))
    | sub :: _ when sub <> "run" && sub <> "replay" ->
        Error (Bad_subcommand { family = "mc"; got = sub; usage = usage_mc })
    | _ -> Error (Bad_arity { family = "mc"; usage = usage_mc })

  let parse_spec = function
    | [ "profile"; "start" ] -> Ok Spec_profile_start
    | [ "profile"; "stop"; name ] when name <> "" -> Ok (Spec_profile_stop { name })
    | [ "apply" ] -> Ok Spec_apply
    | [ "clear" ] -> Ok Spec_clear
    | [ "status" ] -> Ok Spec_status
    | sub :: _ when sub <> "profile" && sub <> "apply" && sub <> "clear" && sub <> "status" ->
        Error (Bad_subcommand { family = "spec"; got = sub; usage = usage_spec })
    | _ -> Error (Bad_arity { family = "spec"; usage = usage_spec })

  (* [None]: the word list is not an operator-family command (the
     shell's other parsers own it). *)
  let parse = function
    | "fault" :: rest -> Some (parse_fault rest)
    | "cache" :: rest -> Some (parse_cache rest)
    | "sched" :: rest -> Some (parse_sched rest)
    | "smp" :: rest -> Some (parse_smp rest)
    | "jobs" :: rest -> Some (parse_jobs rest)
    | "site" :: rest -> Some (parse_site rest)
    | "stats" :: rest -> Some (parse_stats rest)
    | "audit" :: rest -> Some (parse_audit rest)
    | "mc" :: rest -> Some (parse_mc rest)
    | "spec" :: rest -> Some (parse_spec rest)
    | _ -> None

  let of_line line =
    parse (String.split_on_char ' ' (String.trim line) |> List.filter (fun w -> w <> ""))
end
