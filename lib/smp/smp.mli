(** The multiprocessor plant: N simulated CPUs, each with its own SDW
    associative memory and PTW lookaside front, a shared global lock
    with a deterministic cycle-accounted contention model, and the
    connect (inter-processor interrupt) protocol that keeps every
    CPU's cached descriptors coherent with the live ones.

    The design contract, matching the paper's multiprocessor 6180:

    - coherence is synchronous — a descriptor mutation does not return
      until every CPU's associative memories have been invalidated;
    - a lost connect ([smp.lost_connect] fault site) is detected by
      acknowledgement timeout and fails secure: the sender stalls and
      re-signals (then fences the target through the system controller
      after repeated losses) — cycles are lost, a stale Permit never;
    - everything here is timing, not results: an N-CPU run produces
      the same mediation verdicts and audit digest as the 1-CPU run
      (experiment E18's coherence-parity oracle). *)

open Multics_machine

val max_cpus : int

val default_ncpus : unit -> int
(** [MULTICS_NCPU] from the environment when it parses as 1..{!max_cpus};
    1 otherwise. *)

(** The shared global lock: deterministic contention.  The lock
    remembers when it next falls free; an acquirer waits out the
    remainder, then holds it.  Obs instruments live under
    ["<name>.acquisitions"/".contended"/".wait"]. *)
module Lock : sig
  type t

  val create : name:string -> t
  val name : t -> string
  val free_at : t -> int

  val acquire : t -> now:int -> hold:int -> int
  (** Acquire at simulated time [now], holding for [hold] cycles;
      returns the wait in cycles, for the caller to charge to whoever
      was acquiring. *)
end

(** The delivery discipline shared by the per-CPU connect broadcast
    and the inter-site fleet ({!Multics_site.Site}): signal, wait for
    the acknowledgement, retry on loss, and past the retry budget hand
    the target to an escalation path (the system controller here;
    fencing in the fleet).  Every branch either confirms the target
    cleared or escalates — no exit leaves the target possibly stale. *)
module Connect : sig
  type outcome =
    | Delivered of { attempts : int; cycles : int }
    | Escalated of { attempts : int; cycles : int }

  val cycles_of : outcome -> int

  val deliver :
    max_retries:int ->
    attempt:(int -> [ `Acked of int | `Lost of int ]) ->
    escalate:(unit -> int) ->
    outcome
  (** [attempt n] makes the nth signalling attempt, reporting
      [`Acked cycles] (target confirmed cleared; cost includes the
      acknowledgement) or [`Lost cycles] (no acknowledgement within
      the timeout; cost includes the wasted wait).  After
      [max_retries] losses, [escalate ()] must resolve the target by
      other means and return its cycle cost. *)
end

val ack_timeout : Cost.t -> int
(** How long a sender waits for a connect acknowledgement before
    declaring the connect lost: a few IPI round trips. *)

val max_retries : int
(** Losses tolerated on one target before the escalation path runs. *)

type t

val create : ?ncpus:int -> ?ptw_gens:Multics_cache.Avc.Gen.t -> cost:Cost.t -> unit -> t
(** [ncpus] defaults to {!default_ncpus}[ ()]; raises
    [Invalid_argument] outside 1..{!max_cpus}.  [ptw_gens] shares the
    per-CPU PTW fronts' generations with page control's [vm.ptw]
    cache, so an eviction there stales every CPU's front in the same
    step.  Obs instruments: ["smp.connects.sent"/".lost"/".retries"/
    ".rescues"], the ["smp.connect.cycles"] histogram, ["smp.lock.*"]
    and the ["cache.smp.assoc.*"]/["cache.smp.ptw.*"] families. *)

val ncpus : t -> int
val cost : t -> Cost.t
val lock : t -> Lock.t

val set_now : t -> (unit -> int) -> unit
(** Supply the simulated clock (e.g. [fun () -> Sim.now sim]); the
    plant never reads a wall clock. *)

val set_faults : t -> Multics_fault.Fault.Injector.t option -> unit
(** The only site consulted is [Smp_lost_connect]. *)

val set_charge : t -> (int -> unit) -> unit
(** Where connect/lock cycle bills go (e.g. [Sim.perturb] against the
    calling process).  Default: dropped (obs still records them). *)

val set_current : t -> int -> unit
(** Which CPU the currently running work executes on; raises
    [Invalid_argument] for an unknown CPU. *)

val current : t -> int

val cpu_for : t -> key:int -> int
(** Deterministic home CPU for an integer key (a pid, a handle). *)

(** {1 The connect protocol}

    Both calls return only after every CPU has been cleared. *)

val connect_invalidate : t -> handle:int -> segno:int -> unit
(** "setfaults" for one process's descriptor: bump its entry on every
    CPU (the originator inline, the rest via connects). *)

val connect_flush_all : t -> unit
(** Whole-system revocation (salvage, cache clear): flush every CPU's
    CAM and PTW front. *)

(** {1 The deferred-connect bug mode}

    The pre-PR 5 stale-Permit window, re-enableable under a switch so
    the model checker's seeded-bug leg can demonstrate finding the
    counterexample trace.  While enabled, [connect_invalidate] /
    [connect_flush_all] clear the originating CPU inline but only
    queue the remote clears; a remote CPU's associative memory stays
    possibly-stale until [deliver_connects] drains its queue.  Never
    enable outside the checker. *)

val set_deferred_connects : t -> bool -> unit
(** Turning the mode {e off} first delivers everything still queued,
    restoring coherence. *)

val deferred_connects : t -> bool

val deliver_connects : t -> cpu:int -> int
(** Deliver every queued connect addressed to [cpu], in arrival
    order; returns how many were delivered. *)

val pending_connects : t -> (int * string) list
(** The queued [(target cpu, tag)] pairs in arrival order — part of
    the checker's canonical state. *)

(** {1 Read-only cache enumeration}

    For the checker's invariant walk: what would currently hit, with
    no counter movement. *)

val cam_entries : t -> cpu:int -> (int * Sdw.t) list
(** Fresh entries of that CPU's SDW associative memory, keyed by the
    composite [(handle, segno)] key — decompose with
    {!split_cam_key}. *)

val ptw_keys : t -> cpu:int -> int list
(** Fresh page-SID keys of that CPU's PTW lookaside front. *)

val split_cam_key : int -> int * int
(** [(handle, segno)] from a composite CAM key. *)

(** {1 Per-CPU mediation fronts} *)

val check_sdw :
  t ->
  handle:int ->
  segno:int ->
  assoc:Hardware.Assoc.t ->
  fetch:(unit -> Sdw.t option) ->
  ring:Ring.t ->
  operation:Hardware.operation ->
  Hardware.decision option
(** The current CPU's CAM in front of the per-process associative
    memory and the KST fetch.  Brackets and mode are still checked per
    reference; only the descriptor fetch is skipped on a hit.  CAM
    entries are keyed by the dense composite [(handle, segno)] pair —
    the hardware's own SID space — so two processes' descriptors can
    never be confused. *)

val ptw_touch : t -> page:Multics_access.Sid.t -> bool
(** Touch the current CPU's PTW front for a dense page SID (from
    {!Multics_vm.Page_control.page_sid}); [false] (miss) means this
    CPU must walk the page table — callers charge [Cost.ptw_fetch]. *)

(** {1 Dispatcher lock} *)

val dispatch_lock : t -> now:int -> int
(** Acquire the global lock for one run-selection from the shared
    ready structure; returns the wait to charge to the dispatched
    process. *)

(** {1 Status} *)

val cpu_status : t -> int -> (string * int) list

val status : t -> (string * int) list * (int * (string * int) list) list
(** [(plant-wide readings, per-CPU readings)] — the [smp status]
    shell command's payload. *)

val connect_cycles : t -> Multics_obs.Obs.Histogram.t
