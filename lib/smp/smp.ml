(* The multiprocessor plant: N simulated CPUs over the one-event-queue
   simulator.

   The paper's kernel runs on a multiprocessor 6180, and its mediation
   argument only survives that configuration because of one discipline:
   when a descriptor changes, the processor making the change clears
   its own associative memory inline and sends a connect (an
   inter-processor interrupt, the 6180's cioc instruction) to every
   other processor, then waits for each to acknowledge that it has
   cleared its associative memory too.  Only after the last
   acknowledgement does the mutating call return.  A per-CPU stale SDW
   is precisely the revocation window a security kernel must not have.

   This module gives each simulated CPU its own SDW associative memory
   and PTW lookaside front (instances of the same epoch-versioned
   [Avc] that backs the uniprocessor caches), a shared global lock
   with a deterministic cycle-accounted contention model, and the
   connect protocol itself.  Three invariants carry the whole design:

   - {b Coherence is synchronous.}  [connect_invalidate] /
     [connect_flush_all] do not return until every CPU's memories have
     been cleared or bumped.  There is no window in which a mutation
     has returned while a remote CPU can still hit a pre-mutation
     entry.

   - {b A lost connect fails secure.}  The [smp.lost_connect] fault
     site models the IPI being dropped on the wire.  The sender
     detects the missing acknowledgement by timeout, stalls, and
     re-signals; after [max_retries] losses it clears the unresponsive
     CPU's memories directly through the system controller (the rescue
     path — modelling the operator's "that CPU is sick, fence it").
     Every path ends with the target invalidated: a dropped IPI costs
     cycles, never a stale Permit.

   - {b Timing may change, results never.}  Everything here charges
     cycles (through obs instruments and the pluggable [charge]
     closure) but computes no access decision.  The mediation verdicts
     and audit digest of an N-CPU run are identical to the 1-CPU run
     by construction — experiment E18's coherence-parity oracle checks
     exactly this. *)

module Obs = Multics_obs.Obs
module Avc = Multics_cache.Avc
module Cost = Multics_machine.Cost
module Hardware = Multics_machine.Hardware
module Fault = Multics_fault.Fault
module Sid = Multics_access.Sid

(* CPU counts a deployment could plausibly ask for; anything else in
   MULTICS_NCPU is ignored rather than crashing test startup. *)
let max_cpus = 8

let default_ncpus () =
  match Sys.getenv_opt "MULTICS_NCPU" with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 && n <= max_cpus -> n
      | Some _ | None -> 1)

(* ----- The global lock -----

   Early Multics serialized the traffic controller and the descriptor
   machinery on one global lock; contention for it is the first
   scaling cost a multiprocessor pays.  The model is deterministic:
   the lock remembers the cycle at which it next falls free, an
   acquirer at [now] waits out the remainder and then holds it for
   [hold] cycles.  No randomness, no wall clock — the same event order
   produces the same waits, run after run. *)
module Lock = struct
  type t = {
    name : string;
    mutable free_at : int;
    acquisitions : Obs.Counter.t;
    contended : Obs.Counter.t;
    wait_cycles : Obs.Histogram.t;
  }

  let create ~name =
    {
      name;
      free_at = 0;
      acquisitions = Obs.Registry.counter (Obs.Registry.global ()) (name ^ ".acquisitions");
      contended = Obs.Registry.counter (Obs.Registry.global ()) (name ^ ".contended");
      wait_cycles = Obs.Registry.histogram (Obs.Registry.global ()) (name ^ ".wait");
    }

  let name t = t.name
  let free_at t = t.free_at

  (* Returns the wait in cycles; the caller charges it to whichever
     process was doing the acquiring. *)
  let acquire t ~now ~hold =
    let wait = max 0 (t.free_at - now) in
    t.free_at <- now + wait + hold;
    if Obs.enabled () then begin
      Obs.Counter.incr t.acquisitions;
      if wait > 0 then Obs.Counter.incr t.contended;
      Obs.Histogram.observe t.wait_cycles wait
    end;
    wait
end

(* ----- Per-CPU state ----- *)

type cpu = {
  id : int;
  cam : Hardware.Assoc.t;
      (** this CPU's SDW associative memory; keyed by the composite
          [(handle lsl segno_bits) lor segno] so entries from different
          processes' descriptor segments can never be confused *)
  ptw : (int, unit) Avc.t;
      (** this CPU's PTW lookaside front, keyed by dense page SID
          (see {!Multics_vm.Page_control.page_sid}); shares its
          generations with page control's [vm.ptw] cache so an
          eviction stales every CPU's front in the same step *)
  mutable connects_received : int;
}

type t = {
  ncpus : int;
  cost : Cost.t;
  cpus : cpu array;
  mutable current : int;
  lock : Lock.t;
  mutable now : unit -> int;
  mutable faults : Fault.Injector.t option;
  mutable charge : int -> unit;
  mutable deferred_connects : bool;
      (** the pre-PR 5 bug, re-enableable for the model checker's
          seeded-bug leg: remote connects queue instead of being
          delivered synchronously, re-opening the stale-Permit
          window the connect protocol exists to close *)
  mutable pending : (int * string * (unit -> unit)) list;
      (** queued (target cpu, tag, clear) in reverse arrival order *)
  connects_sent : Obs.Counter.t;
  connects_lost : Obs.Counter.t;
  connect_retries : Obs.Counter.t;
  connect_rescues : Obs.Counter.t;
  connect_cycles : Obs.Histogram.t;
}

(* Segment numbers fit comfortably below this; the composite CAM key
   puts the process handle in the bits above. *)
let segno_bits = 12

let cam_key ~handle ~segno = (handle lsl segno_bits) lor (segno land ((1 lsl segno_bits) - 1))

let create ?(ncpus = default_ncpus ()) ?ptw_gens ~cost () =
  if ncpus < 1 || ncpus > max_cpus then
    invalid_arg (Printf.sprintf "Smp.create: ncpus must be in 1..%d" max_cpus);
  let make_cpu id =
    {
      id;
      cam = Hardware.Assoc.create ~name:"smp.assoc" ();
      ptw =
        Avc.create ~capacity:64 ?gens:ptw_gens
          ~hash:(fun page -> page)
          ~equal:Int.equal ~name:"smp.ptw" ();
      connects_received = 0;
    }
  in
  let c name = Obs.Registry.counter (Obs.Registry.global ()) name in
  {
    ncpus;
    cost;
    cpus = Array.init ncpus make_cpu;
    current = 0;
    lock = Lock.create ~name:"smp.lock";
    now = (fun () -> 0);
    faults = None;
    charge = ignore;
    deferred_connects = false;
    pending = [];
    connects_sent = c "smp.connects.sent";
    connects_lost = c "smp.connects.lost";
    connect_retries = c "smp.connects.retries";
    connect_rescues = c "smp.connects.rescues";
    connect_cycles = Obs.Registry.histogram (Obs.Registry.global ()) "smp.connect.cycles";
  }

let ncpus t = t.ncpus
let cost t = t.cost
let lock t = t.lock
let set_now t f = t.now <- f
let set_faults t inj = t.faults <- inj
let set_charge t f = t.charge <- f

let set_current t i =
  if i < 0 || i >= t.ncpus then invalid_arg "Smp.set_current: no such CPU";
  t.current <- i

let current t = t.current
let cpu_for t ~key = (key land max_int) mod t.ncpus

(* ----- The connect protocol ----- *)

(* The delivery discipline, factored out of the per-CPU broadcast so
   the inter-site fleet (lib/site) can run the identical state machine
   over lossy network links: signal, wait for the acknowledgement,
   retry on loss, and past the retry budget hand the target to an
   escalation path (the system controller here; fencing in the fleet).
   Every branch either confirms the target cleared or escalates —
   there is no exit that leaves the target possibly stale, which is
   the fail-secure shape both users need. *)
module Connect = struct
  type outcome =
    | Delivered of { attempts : int; cycles : int }
    | Escalated of { attempts : int; cycles : int }

  let cycles_of = function Delivered { cycles; _ } | Escalated { cycles; _ } -> cycles

  (* [attempt n] makes the nth signalling attempt and reports either
     [`Acked cycles] (target confirmed cleared, cost includes the
     acknowledgement) or [`Lost cycles] (no acknowledgement within the
     timeout; cost includes the wasted wait).  After [max_retries]
     losses, [escalate ()] must clear the target by other means and
     return its cycle cost. *)
  let deliver ~max_retries ~attempt ~escalate =
    let rec go n cycles =
      match attempt n with
      | `Acked c -> Delivered { attempts = n; cycles = cycles + c }
      | `Lost c ->
          let cycles = cycles + c in
          if n >= max_retries then
            Escalated { attempts = n + 1; cycles = cycles + escalate () }
          else go (n + 1) cycles
    in
    go 1 0
end

(* How long the sender waits for the acknowledgement before deciding
   the connect was lost.  A few IPI round trips: generous enough that
   a healthy CPU always acks in time, so a timeout means loss. *)
let ack_timeout cost = 4 * cost.Cost.connect_ipi

(* Losses tolerated before the rescue path fences the target. *)
let max_retries = 8

let lost_connect_fires t =
  match t.faults with
  | None -> false
  | Some inj -> Fault.Injector.fire inj Fault.Smp_lost_connect

(* Broadcast a connect from the current CPU; [clear cpu] is what the
   target's connect-fault handler does (invalidate or flush).  Returns
   only when every CPU has been cleared — synchronous coherence is the
   whole point.  The accumulated cycle bill (per-target IPI +
   interrupt entry, plus stalls for lost connects, plus global-lock
   wait) is recorded in [smp.connect.cycles] and charged through the
   pluggable [charge] closure. *)
let broadcast t ~tag clear =
  let origin = t.current in
  (* The originating CPU clears inline as part of the mutation. *)
  clear t.cpus.(origin);
  if t.ncpus > 1 then begin
    let cycles = ref 0 in
    Array.iter
      (fun c ->
        if c.id <> origin then begin
          if Obs.enabled () then Obs.Counter.incr t.connects_sent;
          let clear_target () =
            clear c;
            c.connects_received <- c.connects_received + 1
          in
          if t.deferred_connects then begin
            (* Bug mode: the IPI is "sent" but delivery waits for an
               explicit [deliver_connects].  The mutating call returns
               with this CPU's associative memory possibly stale —
               exactly the window the synchronous protocol closes. *)
            t.pending <- (c.id, tag, clear_target) :: t.pending;
            cycles := !cycles + t.cost.Cost.connect_ipi
          end
          else
          let outcome =
            Connect.deliver ~max_retries
              ~attempt:(fun _n ->
                if lost_connect_fires t then begin
                  (* No acknowledgement arrived: the IPI was dropped.
                     Detect by timeout, stall, re-signal.  Never
                     proceed — proceeding would leave c's associative
                     memory stale. *)
                  if Obs.enabled () then begin
                    Obs.Counter.incr t.connects_lost;
                    Obs.Counter.incr t.connect_retries
                  end;
                  `Lost (t.cost.Cost.connect_ipi + ack_timeout t.cost)
                end
                else begin
                  clear_target ();
                  `Acked (t.cost.Cost.connect_ipi + t.cost.Cost.interrupt_entry)
                end)
              ~escalate:(fun () ->
                (* Rescue: the target would not ack; clear its
                   memories directly through the system controller. *)
                if Obs.enabled () then Obs.Counter.incr t.connect_rescues;
                clear_target ();
                t.cost.Cost.connect_ipi + t.cost.Cost.interrupt_entry)
          in
          cycles := !cycles + Connect.cycles_of outcome
        end)
      t.cpus;
    (* Descriptor mutation serializes on the global lock for the
       duration of the broadcast. *)
    let wait = Lock.acquire t.lock ~now:(t.now ()) ~hold:!cycles in
    let total = wait + !cycles in
    if Obs.enabled () then Obs.Histogram.observe t.connect_cycles total;
    t.charge total
  end

(* A descriptor for (handle, segno) changed ("setfaults"): bump that
   entry's generation on every CPU.  The composite key makes the bump
   exact — other processes' entries for the same segno survive. *)
let connect_invalidate t ~handle ~segno =
  let key = cam_key ~handle ~segno in
  broadcast t ~tag:(Printf.sprintf "inval:%d" key) (fun c ->
      Hardware.Assoc.invalidate c.cam ~segno:key)

(* Whole-system revocation (salvage, cache clear): flush every CPU's
   CAM and PTW front outright. *)
let connect_flush_all t =
  broadcast t ~tag:"flush" (fun c ->
      Hardware.Assoc.flush c.cam;
      Avc.flush c.ptw)

(* ----- The deferred-connect bug mode -----

   PR 5 fixed the stale-Permit window by making [broadcast]
   synchronous.  The model checker's seeded-bug leg needs the
   pre-fix behaviour back, under a switch, to demonstrate that the
   exhaustive search finds the two-action counterexample the
   100-seed oracles only trip over probabilistically. *)

let set_deferred_connects t flag =
  if not flag then begin
    (* Leaving bug mode delivers everything still queued, so the
       plant is coherent again. *)
    List.iter (fun (_, _, deliver) -> deliver ()) (List.rev t.pending);
    t.pending <- []
  end;
  t.deferred_connects <- flag

let deferred_connects t = t.deferred_connects

let deliver_connects t ~cpu =
  let mine, rest =
    List.partition (fun (target, _, _) -> target = cpu) (List.rev t.pending)
  in
  List.iter (fun (_, _, deliver) -> deliver ()) mine;
  t.pending <- List.rev rest;
  List.length mine

let pending_connects t = List.rev_map (fun (cpu, tag, _) -> (cpu, tag)) t.pending

(* ----- Read-only cache enumeration (for the model checker) ----- *)

let cam_entries t ~cpu = Hardware.Assoc.entries t.cpus.(cpu).cam
let ptw_keys t ~cpu = List.map fst (Avc.entries t.cpus.(cpu).ptw)
let split_cam_key key = (key lsr segno_bits, key land ((1 lsl segno_bits) - 1))

(* ----- The per-CPU mediation fronts ----- *)

(* The current CPU's SDW associative memory, in front of the
   per-process one.  A hit replays the cached SDW through the hardware
   check (brackets and mode are still enforced per reference — only
   the descriptor fetch is skipped); a miss falls through to the
   per-process memory and then the KST, installing the descriptor in
   both on the way back.  Soundness: entries die via connects in the
   same step as any descriptor change, so the CAM can never replay a
   revoked SDW. *)
let check_sdw t ~handle ~segno ~assoc ~fetch ~ring ~operation =
  let c = t.cpus.(t.current) in
  let key = cam_key ~handle ~segno in
  match Hardware.Assoc.lookup c.cam ~segno:key with
  | Some sdw -> Some (Hardware.check sdw ~ring ~operation)
  | None -> (
      let sdw_opt =
        match Hardware.Assoc.lookup assoc ~segno with
        | Some sdw -> Some sdw
        | None -> (
            match fetch () with
            | None -> None
            | Some sdw ->
                Hardware.Assoc.install assoc ~segno sdw;
                Some sdw)
      in
      match sdw_opt with
      | None -> None
      | Some sdw ->
          Hardware.Assoc.install c.cam ~segno:key sdw;
          Some (Hardware.check sdw ~ring ~operation))

(* Touch the current CPU's PTW front for a page SID; returns whether
   it hit.  A miss models this CPU walking the page table even though
   another CPU walked it recently — each processor has its own
   lookaside.  Shared generations keep the front honest: page
   control's eviction bump (on the same SID space) stales every CPU's
   entry at once. *)
let ptw_touch t ~page =
  let key = Sid.to_int page in
  let c = t.cpus.(t.current) in
  match Avc.find c.ptw key with
  | Some () -> true
  | None ->
      Avc.add c.ptw ~obj:key key ();
      false

(* ----- Dispatcher lock -----

   Per-CPU run selection contends for the same global lock as the
   connect path: picking a process off the shared ready structure
   holds it for a few queue operations' worth of references. *)
let dispatch_lock_hold cost = 20 * cost.Cost.memory_reference

let dispatch_lock t ~now = Lock.acquire t.lock ~now ~hold:(dispatch_lock_hold t.cost)

(* ----- Status ----- *)

let cpu_status t i =
  let c = t.cpus.(i) in
  [
    ("cam_size", Hardware.Assoc.size c.cam);
    ("ptw_size", Avc.size c.ptw);
    ("connects_received", c.connects_received);
  ]

let status t =
  let get = Obs.Counter.get in
  let global =
    [
      ("ncpus", t.ncpus);
      ("current", t.current);
      ("lock_free_at", Lock.free_at t.lock);
      ("connects.sent", get t.connects_sent);
      ("connects.lost", get t.connects_lost);
      ("connects.retries", get t.connect_retries);
      ("connects.rescues", get t.connect_rescues);
    ]
  in
  let per_cpu = List.init t.ncpus (fun i -> (i, cpu_status t i)) in
  (global, per_cpu)

let connect_cycles t = t.connect_cycles
