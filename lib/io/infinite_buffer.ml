(* The new VM-backed "infinite" input buffer.

   "A new buffering strategy ... which, by utilizing the virtual
   memory, provides a core resident buffer which appears to be of
   infinite length."  The writer appends; fresh pages are demanded from
   the virtual memory as the write pointer crosses a page boundary, and
   pages wholly behind the read pointer are returned.  No reuse
   arithmetic, no lapping, no lost messages — the simplification is
   that the standard storage facility of the system replaces the
   special-purpose one. *)

module Obs = Multics_obs.Obs

let obs_writes = Obs.Local.counter "io.infinite.writes"
let obs_reads = Obs.Local.counter "io.infinite.reads"
let obs_pages_demanded = Obs.Local.counter "io.infinite.pages_demanded"
let obs_pages_returned = Obs.Local.counter "io.infinite.pages_returned"
type t = {
  messages_per_page : int;
  pages : (int, int array) Hashtbl.t;  (** page index -> messages *)
  mutable write_seq : int;  (** total messages ever written *)
  mutable read_seq : int;  (** total messages ever read *)
  mutable pages_demanded : int;
  mutable pages_returned : int;
  mutable peak_resident_pages : int;
}

let create ?(messages_per_page = 16) () =
  if messages_per_page <= 0 then invalid_arg "Infinite_buffer.create: page size must be positive";
  {
    messages_per_page;
    pages = Hashtbl.create 16;
    write_seq = 0;
    read_seq = 0;
    pages_demanded = 0;
    pages_returned = 0;
    peak_resident_pages = 0;
  }

let occupancy t = t.write_seq - t.read_seq

let resident_pages t = Hashtbl.length t.pages

let page_of t seq = seq / t.messages_per_page

let slot_of t seq = seq mod t.messages_per_page

let write t message =
  let page_index = page_of t t.write_seq in
  let page =
    match Hashtbl.find_opt t.pages page_index with
    | Some page -> page
    | None ->
        (* Demand a fresh page from the virtual memory. *)
        let page = Array.make t.messages_per_page 0 in
        Hashtbl.replace t.pages page_index page;
        t.pages_demanded <- t.pages_demanded + 1;
        Obs.Counter.incr (obs_pages_demanded ());
        t.peak_resident_pages <- max t.peak_resident_pages (Hashtbl.length t.pages);
        page
  in
  page.(slot_of t t.write_seq) <- message;
  t.write_seq <- t.write_seq + 1;
  Obs.Counter.incr (obs_writes ())

let read t =
  if t.read_seq >= t.write_seq then None
  else begin
    let page_index = page_of t t.read_seq in
    match Hashtbl.find_opt t.pages page_index with
    | None -> None (* unreachable by construction *)
    | Some page ->
        let message = page.(slot_of t t.read_seq) in
        t.read_seq <- t.read_seq + 1;
        Obs.Counter.incr (obs_reads ());
        (* Return pages wholly behind the read pointer. *)
        if page_of t t.read_seq > page_index then begin
          Hashtbl.remove t.pages page_index;
          t.pages_returned <- t.pages_returned + 1;
          Obs.Counter.incr (obs_pages_returned ())
        end;
        Some message
  end

let written t = t.write_seq
let messages_read t = t.read_seq
let pages_demanded t = t.pages_demanded
let pages_returned t = t.pages_returned
let peak_resident_pages t = t.peak_resident_pages

(* No wraparound management, no reader/writer collision handling: the
   append-and-trim logic is a fraction of the circular mechanism. *)
let mechanism_statements = 35
