(* The old circular input buffer.

   A fixed ring reused "over and over again, with attendant problems of
   old messages not being removed before a complete circuit of the
   buffer was made": when input arrives faster than the consumer
   drains, the writer laps the reader and destroys unread messages.
   This module reproduces exactly that failure mode so E7 can measure
   it against the VM-backed infinite buffer. *)

module Obs = Multics_obs.Obs

let obs_writes = Obs.Local.counter "io.circular.writes"
let obs_reads = Obs.Local.counter "io.circular.reads"
let obs_overwritten = Obs.Local.counter "io.circular.overwritten"
type t = {
  slots : int array;
  mutable write_pos : int;
  mutable read_pos : int;
  mutable count : int;  (** unread messages currently in the ring *)
  mutable written : int;
  mutable read : int;
  mutable overwritten : int;  (** unread messages destroyed by lapping *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Circular_buffer.create: capacity must be positive";
  {
    slots = Array.make capacity 0;
    write_pos = 0;
    read_pos = 0;
    count = 0;
    written = 0;
    read = 0;
    overwritten = 0;
  }

let capacity t = Array.length t.slots

let occupancy t = t.count

let write t message =
  let n = capacity t in
  if t.count = n then begin
    (* Complete circuit: the slot under the write position still holds
       an unread message; it is destroyed. *)
    t.overwritten <- t.overwritten + 1;
    Obs.Counter.incr (obs_overwritten ());
    t.read_pos <- (t.read_pos + 1) mod n;
    t.count <- t.count - 1
  end;
  t.slots.(t.write_pos) <- message;
  t.write_pos <- (t.write_pos + 1) mod n;
  t.count <- t.count + 1;
  t.written <- t.written + 1;
  Obs.Counter.incr (obs_writes ())

let read t =
  if t.count = 0 then None
  else begin
    let message = t.slots.(t.read_pos) in
    t.read_pos <- (t.read_pos + 1) mod capacity t;
    t.count <- t.count - 1;
    t.read <- t.read + 1;
    Obs.Counter.incr (obs_reads ());
    Some message
  end

let written t = t.written
let messages_read t = t.read
let overwritten t = t.overwritten

(* Complexity proxy: the wraparound-and-reuse management the paper
   calls "a special purpose storage management facility".  Statement
   counts are used by the inventory comparison. *)
let mechanism_statements = 120
