(* Network input workload: bursty arrivals against a consumer, driving
   either buffering strategy.

   Arrivals come in geometric bursts (a terminal's line of characters,
   a network packet train); the consumer drains at a fixed service
   rate.  When offered load exceeds service capacity for long enough,
   the circular buffer laps itself and destroys messages; the infinite
   buffer simply grows. *)

open Multics_proc

type strategy = Circular of Circular_buffer.t | Infinite of Infinite_buffer.t

let strategy_name = function
  | Circular buffer -> Printf.sprintf "circular(%d)" (Circular_buffer.capacity buffer)
  | Infinite _ -> "infinite-vm"

let write_message strategy message =
  match strategy with
  | Circular buffer -> Circular_buffer.write buffer message
  | Infinite buffer -> Infinite_buffer.write buffer message

let read_message strategy =
  match strategy with
  | Circular buffer -> Circular_buffer.read buffer
  | Infinite buffer -> Infinite_buffer.read buffer

type result = {
  strategy : string;
  offered : int;
  delivered : int;  (** distinct messages the consumer actually received *)
  lost : int;  (** offered - delivered *)
  peak_occupancy : int;
  peak_pages : int;  (** infinite strategy only; 0 otherwise *)
  mechanism_statements : int;
}

type workload = {
  bursts : int;  (** number of arrival bursts *)
  burst_gap : int;  (** cycles between burst starts *)
  intra_burst_gap : int;  (** cycles between messages inside a burst *)
  burst_continue_num : int;  (** geometric burst-length parameter *)
  burst_continue_den : int;
  burst_cap : int;
  consume_cycles : int;  (** consumer service time per message *)
}

let default_workload =
  {
    bursts = 40;
    burst_gap = 12_000;
    intra_burst_gap = 40;
    burst_continue_num = 14;
    burst_continue_den = 16;
    burst_cap = 64;
    consume_cycles = 700;
  }

(* A transient arrival error defers the message; retries back off
   exponentially from this base and deliver unconditionally once the
   retry budget is spent — transients delay, they never lose. *)
let transient_backoff_cycles = 2_500

let transient_retry_cap = 3

(* Drive one strategy through the workload on its own simulator.
   Returns delivery statistics.

   [prng] (when given) overrides [seed] so the caller can hand this
   workload a stream split from a master generator — the fault engine
   and the traffic generator then compose under one seed instead of
   colliding.  [faults] injects [Net_transient] arrival errors and
   [Consumer_stall]s from a deterministic plan. *)
let run ?(seed = 1975) ?prng ?faults ?(workload = default_workload) strategy =
  let sim = Sim.create ~cost:Multics_machine.Cost.h6180 ~virtual_processors:2 in
  let prng =
    match prng with Some prng -> prng | None -> Multics_util.Prng.create ~seed
  in
  let data_ready = Sim.new_channel sim ~name:"net.data" in
  let offered = ref 0 in
  let received = ref [] in
  let peak = ref 0 in
  let fire site =
    match faults with
    | None -> false
    | Some inj -> Multics_fault.Fault.Injector.fire inj site
  in
  let deliver message =
    write_message strategy message;
    (let occupancy =
       match strategy with
       | Circular buffer -> Circular_buffer.occupancy buffer
       | Infinite buffer -> Infinite_buffer.occupancy buffer
     in
     if occupancy > !peak then peak := occupancy);
    Sim.wakeup sim data_ready
  in
  (* Arrival side: interrupt-level writes into the buffer; a transient
     error re-schedules the write with exponential backoff. *)
  let rec arrive ~attempt message =
    if attempt < transient_retry_cap && fire Multics_fault.Fault.Net_transient then begin
      (match faults with
      | Some inj -> Multics_fault.Fault.Injector.count_retry inj Multics_fault.Fault.Net_transient
      | None -> ());
      Sim.at sim
        ~delay:(transient_backoff_cycles * (1 lsl attempt))
        (fun () -> arrive ~attempt:(attempt + 1) message)
    end
    else deliver message
  in
  let time = ref 0 in
  for _ = 1 to workload.bursts do
    let burst_len =
      Multics_util.Prng.burst_length prng ~continue_num:workload.burst_continue_num
        ~continue_den:workload.burst_continue_den ~cap:workload.burst_cap
    in
    for i = 0 to burst_len - 1 do
      let arrival_time = !time + (i * workload.intra_burst_gap) in
      Sim.at sim ~delay:arrival_time (fun () ->
          let message = !offered in
          incr offered;
          arrive ~attempt:0 message)
    done;
    time := !time + workload.burst_gap
  done;
  (* Consumer process: block for data, drain one message per service
     period; an injected stall parks it for several service periods
     mid-drain (input keeps arriving — the circular ring laps). *)
  ignore
    (Sim.spawn sim ~name:"net.consumer" (fun _ ->
         let rec serve () =
           Sim.block data_ready;
           let rec drain () =
             match read_message strategy with
             | None -> ()
             | Some message ->
                 if fire Multics_fault.Fault.Consumer_stall then
                   Sim.compute (8 * workload.consume_cycles);
                 Sim.compute workload.consume_cycles;
                 received := message :: !received;
                 drain ()
           in
           drain ();
           serve ()
         in
         serve ()));
  Sim.run sim;
  let delivered = List.length (List.sort_uniq Int.compare !received) in
  {
    strategy = strategy_name strategy;
    offered = !offered;
    delivered;
    lost = !offered - delivered;
    peak_occupancy = !peak;
    peak_pages =
      (match strategy with
      | Infinite buffer -> Infinite_buffer.peak_resident_pages buffer
      | Circular _ -> 0);
    mechanism_statements =
      (match strategy with
      | Circular _ -> Circular_buffer.mechanism_statements
      | Infinite _ -> Infinite_buffer.mechanism_statements);
  }

(* ----- Inter-site links ----- *)

(* A point-to-point attachment between two kernel sites.  The link
   itself is dumb wire: it carries one transmission at a fixed one-way
   latency and reports what happened to it.  All policy — retry,
   backoff, fencing — belongs to the caller (lib/site), which is what
   keeps the fail-secure argument out of the transport. *)
module Link = struct
  module Obs = Multics_obs.Obs
  module Fault = Multics_fault.Fault

  let obs_sent = Obs.Local.counter "net.link.sent"
  let obs_dropped = Obs.Local.counter "net.link.dropped"
  let obs_delayed = Obs.Local.counter "net.link.delayed"
  let obs_severed = Obs.Local.counter "net.link.severed"
  type outcome =
    | Delivered of { cycles : int }
    | Dropped of { cycles : int }
    | Severed of { cycles : int }

  (* A congested link stretches the one-way latency by this factor. *)
  let delay_factor = 4

  type t = {
    name : string;
    latency : int;
    mutable faults : Fault.Injector.t option;
    mutable partitioned : bool;
    mutable sent : int;
    mutable dropped : int;
    mutable delayed : int;
    mutable severed : int;
  }

  let create ?(latency = 1_000) ~name () =
    {
      name;
      latency;
      faults = None;
      partitioned = false;
      sent = 0;
      dropped = 0;
      delayed = 0;
      severed = 0;
    }

  let name t = t.name
  let latency t = t.latency
  let set_faults t faults = t.faults <- faults
  let partition t = t.partitioned <- true
  let heal t = t.partitioned <- false
  let partitioned t = t.partitioned

  let fire t site =
    match t.faults with None -> false | Some inj -> Fault.Injector.fire inj site

  (* One transmission attempt.  The cycle charge is what the sender
     pays before it can know the outcome: a delivered connect costs a
     round trip (connect out, acknowledgement back); a lost one costs
     the outbound latency plus however long the sender waits for the
     acknowledgement that never comes (the caller's timeout, charged
     by the caller as backoff). *)
  let transmit t =
    t.sent <- t.sent + 1;
    Obs.Counter.incr (obs_sent ());
    if t.partitioned || fire t Fault.Site_partition then begin
      t.severed <- t.severed + 1;
      Obs.Counter.incr (obs_severed ());
      Severed { cycles = t.latency }
    end
    else if fire t Fault.Site_drop then begin
      t.dropped <- t.dropped + 1;
      Obs.Counter.incr (obs_dropped ());
      Dropped { cycles = t.latency }
    end
    else if fire t Fault.Site_delay then begin
      t.delayed <- t.delayed + 1;
      Obs.Counter.incr (obs_delayed ());
      Delivered { cycles = 2 * t.latency * delay_factor }
    end
    else Delivered { cycles = 2 * t.latency }

  let counters t =
    [
      ("sent", t.sent);
      ("dropped", t.dropped);
      ("delayed", t.delayed);
      ("severed", t.severed);
    ]
end
