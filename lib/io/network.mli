(** Bursty network-input workload driving either buffering strategy
    against a fixed-rate consumer (experiment E7). *)

type strategy = Circular of Circular_buffer.t | Infinite of Infinite_buffer.t

val strategy_name : strategy -> string

type result = {
  strategy : string;
  offered : int;
  delivered : int;
  lost : int;
  peak_occupancy : int;
  peak_pages : int;
  mechanism_statements : int;
}

type workload = {
  bursts : int;
  burst_gap : int;
  intra_burst_gap : int;
  burst_continue_num : int;
  burst_continue_den : int;
  burst_cap : int;
  consume_cycles : int;
}

val default_workload : workload

val run :
  ?seed:int ->
  ?prng:Multics_util.Prng.t ->
  ?faults:Multics_fault.Fault.Injector.t ->
  ?workload:workload ->
  strategy ->
  result
(** Deterministic for a given seed (or caller-supplied [prng] stream,
    which overrides [seed] so workload and fault-plan seeds compose)
    and workload.  [faults] injects [Net_transient] arrival errors
    (retried with exponential backoff, then delivered — transients
    delay, never lose) and [Consumer_stall]s (the consumer parks for
    several service periods mid-drain). *)
