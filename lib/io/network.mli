(** Bursty network-input workload driving either buffering strategy
    against a fixed-rate consumer (experiment E7). *)

type strategy = Circular of Circular_buffer.t | Infinite of Infinite_buffer.t

val strategy_name : strategy -> string

type result = {
  strategy : string;
  offered : int;
  delivered : int;
  lost : int;
  peak_occupancy : int;
  peak_pages : int;
  mechanism_statements : int;
}

type workload = {
  bursts : int;
  burst_gap : int;
  intra_burst_gap : int;
  burst_continue_num : int;
  burst_continue_den : int;
  burst_cap : int;
  consume_cycles : int;
}

val default_workload : workload

val run :
  ?seed:int ->
  ?prng:Multics_util.Prng.t ->
  ?faults:Multics_fault.Fault.Injector.t ->
  ?workload:workload ->
  strategy ->
  result
(** Deterministic for a given seed (or caller-supplied [prng] stream,
    which overrides [seed] so workload and fault-plan seeds compose)
    and workload.  [faults] injects [Net_transient] arrival errors
    (retried with exponential backoff, then delivered — transients
    delay, never lose) and [Consumer_stall]s (the consumer parks for
    several service periods mid-drain). *)

(** A point-to-point attachment between two kernel sites: dumb wire at
    a fixed one-way latency, plus the deterministic failure surface a
    distributed fleet needs — fault-injected drops, delays and
    partitions ([site.drop] / [site.delay] / [site.partition]) and an
    operator-severed partition flag.  All retry, backoff and fencing
    policy belongs to the caller ({!Multics_site.Site}); the transport
    only reports what the wire did. *)
module Link : sig
  type t

  (** What one transmission attempt did, with the cycles the sender
      pays before it can know: a delivered connect costs the round trip
      (stretched by congestion under [site.delay]); a dropped or
      severed one costs the outbound latency — the acknowledgement
      timeout on top is the caller's backoff to charge. *)
  type outcome =
    | Delivered of { cycles : int }
    | Dropped of { cycles : int }  (** lost on the wire ([site.drop]) *)
    | Severed of { cycles : int }
        (** partitioned, by operator or by [site.partition] *)

  val delay_factor : int

  val create : ?latency:int -> name:string -> unit -> t

  val name : t -> string
  val latency : t -> int

  val set_faults : t -> Multics_fault.Fault.Injector.t option -> unit

  val partition : t -> unit
  (** Operator-severed: every transmission is [Severed] until {!heal}. *)

  val heal : t -> unit
  val partitioned : t -> bool

  val transmit : t -> outcome

  val counters : t -> (string * int) list
  (** [sent] / [dropped] / [delayed] / [severed], for the per-link
      status surface. *)
end
