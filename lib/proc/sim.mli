(** Deterministic discrete-event simulator implementing the paper's
    two-layer process design: a fixed pool of virtual processors
    (layer 1), multiplexed among any number of processes (layer 2),
    with counted-wakeup IPC channels.

    Process bodies are ordinary functions that suspend via {!compute}
    and {!block}; those two functions must only be called from inside a
    running process body. *)

open Multics_machine

type t

type pid = int

type chan
(** An event channel with counted wakeups: a wakeup that finds no
    waiter is remembered and satisfies the next [block] immediately. *)

val create : cost:Cost.t -> virtual_processors:int -> t
(** Raises [Invalid_argument] if [virtual_processors <= 0]. *)

exception Process_crashed
(** What a process body observes when an injected [Proc_crash] fault
    fires at one of its compute points; recorded via {!failure_of}. *)

val set_faults : t -> Multics_fault.Fault.Injector.t option -> unit
(** Install (or clear) a fault injector.  The only site the simulator
    itself consults is [Proc_crash], checked at every [compute]. *)

val fault_injector : t -> Multics_fault.Fault.Injector.t option
(** The installed injector, so subsystems riding on the simulator (the
    traffic controller's [sched.preempt_storm] site) share one plan. *)

(** {1 The traffic controller hook}

    [lib/sched] lives above this library, so layer 2 consults the
    traffic controller through a neutral record of closures.  With no
    scheduler installed, dispatch falls back to the original FIFO ready
    queue with unlimited quanta — exactly the seed behaviour.
    Dedicated processes (reserved VPs) never pass through the
    scheduler: they are the kernel mechanisms the controller itself
    relies on, and preempting them could deadlock page control.

    Preemption only reorders and delays work; a preempted process keeps
    its parked continuation and owed cycles, and continues unchanged
    when next dispatched.  The scheduler therefore cannot perturb any
    computed result — only timing. *)

type scheduler = {
  sched_name : string;
  sched_enqueue : pid -> unit;
      (** a process became ready (spawn or counted wakeup) *)
  sched_select : vp:int -> pid option;
      (** pick (and dequeue) the next process for the given free VP;
          the VP index identifies the simulated CPU doing the
          selecting, so a multiprocessor plant can charge ready-queue
          lock contention to the right dispatcher *)
  sched_quantum : pid -> int option;
      (** quantum for this dispatch; [None] = run until block *)
  sched_quantum_expired : pid -> preempted:bool -> unit;
      (** the quantum ran out; [preempted] iff compute was still owed *)
  sched_blocked : pid -> unit;  (** the process surrendered its VP to wait *)
  sched_retired : pid -> unit;  (** the process terminated *)
  sched_backlog : unit -> int;
      (** ready + admission-stalled processes held by the scheduler;
          consulted by {!quiescent} *)
}

val set_scheduler : t -> scheduler option -> unit
(** Install (or remove) a traffic controller.  Install it before
    spawning the processes it is to manage: already-queued processes
    stay in the fallback FIFO queue. *)

val scheduler_installed : t -> string option
(** [sched_name] of the installed controller, if any. *)

val reschedule : t -> unit
(** Re-run dispatch: bind ready processes to free VPs.  Call after an
    external change makes new processes selectable (e.g. the traffic
    controller admitted a stalled process when eligibility freed up). *)

val now : t -> int
(** Simulated time in cycles. *)

val cost_model : t -> Cost.t
val counters : t -> Multics_util.Stats.Counters.t

(** {1 Channels} *)

val new_channel : t -> name:string -> chan
val channel_name : chan -> string
val waiter_count : chan -> int
val pending_wakeups : chan -> int

val wakeup : t -> chan -> unit
(** Wake the first waiter, or record a pending wakeup.  Callable from
    anywhere (process bodies, interrupt thunks, test code). *)

val broadcast : t -> chan -> unit
(** Wake every current waiter; records nothing if there are none. *)

(** {1 Processes} *)

val spawn : ?ring:Ring.t -> ?dedicated:bool -> t -> name:string -> (pid -> unit) -> pid
(** Create a process.  [~dedicated:true] permanently reserves a
    virtual processor for it (the paper's kernel processes); raises
    [Invalid_argument] if none is free.  Default ring is {!Ring.user}. *)

val compute : int -> unit
(** Consume simulated cycles.  Only inside a process body. *)

val block : chan -> unit
(** Wait for a wakeup on the channel.  Only inside a process body. *)

val yield : unit -> unit
(** Let simultaneous events run (costs one cycle). *)

val name_of : t -> pid -> string
val ring_of : t -> pid -> Ring.t
val set_ring : t -> pid -> Ring.t -> unit

type proc_state = Unborn | Ready | Running | Blocked of chan | Terminated

val state_of : t -> pid -> proc_state

val cycles_of : t -> pid -> int
(** Total cycles the process has consumed (including perturbations). *)

val block_count_of : t -> pid -> int
val perturbations_of : t -> pid -> int

val failure_of : t -> pid -> string option
(** Exception text if the process body raised. *)

val exit_channel : t -> pid -> chan
(** Broadcast when the process terminates. *)

val processes : t -> pid list
val running_pids : t -> pid list
val blocked_pids : t -> pid list

val perturb : t -> pid -> int -> unit
(** Charge cycles to a process from outside — the inline interrupt
    discipline stealing time from its victim. *)

(** {1 External events and the main loop} *)

type event = Start of pid | Resume of pid | Slice of pid | Thunk of (unit -> unit)
(** What the event queue carries.  Public so an external driver (the
    model checker, [lib/mc]) can see the transition alphabet; inside
    this library only [step] pops events. *)

val at : t -> delay:int -> (unit -> unit) -> unit
(** Schedule a thunk (device arrival, interrupt) at [now + delay]. *)

val apply : t -> time:int -> event -> unit
(** The pure transition function: advance the clock to [time] and
    apply one event — exactly what [step] does after popping.  The
    split lets a replay driver run a recorded schedule through the
    real transition code without a second interpretation of events. *)

val step : t -> bool
(** Pop one event and {!apply} it; false when the queue is empty. *)

val run : ?max_events:int -> t -> unit
(** Run until no events remain.  Raises [Failure] if [max_events]
    (default 10M) is exceeded — a livelock guard. *)

val run_until : t -> time:int -> unit
(** Process events up to and including [time], then advance the clock
    to [time]. *)

val quiescent : t -> bool

(** {1 Tracing} *)

val set_trace : t -> bool -> unit
val trace : t -> string -> unit
val tracef : t -> ('a, Format.formatter, unit, unit) format4 -> 'a
val trace_lines : t -> (int * string) list
