(** Deterministic discrete-event simulator implementing the paper's
    two-layer process design: a fixed pool of virtual processors
    (layer 1), multiplexed among any number of processes (layer 2),
    with counted-wakeup IPC channels.

    Process bodies are ordinary functions that suspend via {!compute}
    and {!block}; those two functions must only be called from inside a
    running process body. *)

open Multics_machine

type t

type pid = int

type chan
(** An event channel with counted wakeups: a wakeup that finds no
    waiter is remembered and satisfies the next [block] immediately. *)

val create : cost:Cost.t -> virtual_processors:int -> t
(** Raises [Invalid_argument] if [virtual_processors <= 0]. *)

exception Process_crashed
(** What a process body observes when an injected [Proc_crash] fault
    fires at one of its compute points; recorded via {!failure_of}. *)

val set_faults : t -> Multics_fault.Fault.Injector.t option -> unit
(** Install (or clear) a fault injector.  The only site the simulator
    itself consults is [Proc_crash], checked at every [compute]. *)

val now : t -> int
(** Simulated time in cycles. *)

val cost_model : t -> Cost.t
val counters : t -> Multics_util.Stats.Counters.t

(** {1 Channels} *)

val new_channel : t -> name:string -> chan
val channel_name : chan -> string
val waiter_count : chan -> int
val pending_wakeups : chan -> int

val wakeup : t -> chan -> unit
(** Wake the first waiter, or record a pending wakeup.  Callable from
    anywhere (process bodies, interrupt thunks, test code). *)

val broadcast : t -> chan -> unit
(** Wake every current waiter; records nothing if there are none. *)

(** {1 Processes} *)

val spawn : ?ring:Ring.t -> ?dedicated:bool -> t -> name:string -> (pid -> unit) -> pid
(** Create a process.  [~dedicated:true] permanently reserves a
    virtual processor for it (the paper's kernel processes); raises
    [Invalid_argument] if none is free.  Default ring is {!Ring.user}. *)

val compute : int -> unit
(** Consume simulated cycles.  Only inside a process body. *)

val block : chan -> unit
(** Wait for a wakeup on the channel.  Only inside a process body. *)

val yield : unit -> unit
(** Let simultaneous events run (costs one cycle). *)

val name_of : t -> pid -> string
val ring_of : t -> pid -> Ring.t
val set_ring : t -> pid -> Ring.t -> unit

type proc_state = Unborn | Ready | Running | Blocked of chan | Terminated

val state_of : t -> pid -> proc_state

val cycles_of : t -> pid -> int
(** Total cycles the process has consumed (including perturbations). *)

val block_count_of : t -> pid -> int
val perturbations_of : t -> pid -> int

val failure_of : t -> pid -> string option
(** Exception text if the process body raised. *)

val exit_channel : t -> pid -> chan
(** Broadcast when the process terminates. *)

val processes : t -> pid list
val running_pids : t -> pid list
val blocked_pids : t -> pid list

val perturb : t -> pid -> int -> unit
(** Charge cycles to a process from outside — the inline interrupt
    discipline stealing time from its victim. *)

(** {1 External events and the main loop} *)

val at : t -> delay:int -> (unit -> unit) -> unit
(** Schedule a thunk (device arrival, interrupt) at [now + delay]. *)

val step : t -> bool
(** Process one event; false when the queue is empty. *)

val run : ?max_events:int -> t -> unit
(** Run until no events remain.  Raises [Failure] if [max_events]
    (default 10M) is exceeded — a livelock guard. *)

val run_until : t -> time:int -> unit
(** Process events up to and including [time], then advance the clock
    to [time]. *)

val quiescent : t -> bool

(** {1 Tracing} *)

val set_trace : t -> bool -> unit
val trace : t -> string -> unit
val tracef : t -> ('a, Format.formatter, unit, unit) format4 -> 'a
val trace_lines : t -> (int * string) list
