(* The two-layer process implementation, as a deterministic
   discrete-event simulator.

   Layer 1 multiplexes the hardware into a FIXED number of virtual
   processors; because the number is fixed, this layer is independent
   of the virtual-memory machinery — the property the paper's process
   redesign is after.  Several virtual processors are permanently
   assigned to kernel mechanisms ([spawn ~dedicated:true]); the rest
   are multiplexed by layer 2 among any number of full Multics
   processes.

   Process bodies are ordinary OCaml functions that suspend through
   effects: [compute n] consumes n simulated cycles, [block chan]
   waits for a wakeup.  Wakeups are counted (a wakeup with no waiter is
   remembered), matching the Multics base-level IPC whose "use can be
   controlled with the standard memory protection mechanisms".

   Determinism: a single event queue ordered by (time, insertion seq);
   no wall-clock anywhere. *)

open Multics_machine
module Obs = Multics_obs.Obs

(* Observability: the counted-wakeup IPC layer.  "Lost" wakeups cannot
   happen here (a wakeup with no waiter is remembered), so the lost
   counter stays zero unless a future channel variant drops them — its
   presence makes the invariant checkable from the outside. *)
let obs_wakeups_sent = Obs.Local.counter "ipc.wakeups.sent"
let obs_wakeups_delivered = Obs.Local.counter "ipc.wakeups.delivered"
let obs_wakeups_queued = Obs.Local.counter "ipc.wakeups.queued"
let obs_wakeups_consumed = Obs.Local.counter "ipc.wakeups.consumed"
let obs_wakeups_lost = Obs.Local.counter "ipc.wakeups.lost"
let obs_blocks = Obs.Local.counter "ipc.blocks"
let _ = (obs_wakeups_lost ())

type pid = int

type chan = {
  chan_id : int;
  chan_name : string;
  mutable waiters : pid Multics_util.Fqueue.t;
  mutable pending : int;  (** counted wakeups that found no waiter *)
}

type proc_state = Unborn | Ready | Running | Blocked of chan | Terminated

type process = {
  pid : pid;
  pname : string;
  mutable ring : Ring.t;
  body : pid -> unit;
  dedicated_vp : int option;
  exit_chan : chan;
  mutable state : proc_state;
  mutable cont : (unit, unit) Effect.Deep.continuation option;
  mutable cycles_used : int;
  mutable block_count : int;
  mutable extra_delay : int;  (** cycles stolen by inline interrupt handling *)
  mutable perturbation_count : int;
  mutable failure : string option;
  mutable compute_left : int;  (** cycles still owed on the current [compute] *)
  mutable slice : int;  (** length of the slice currently on the event queue *)
  mutable quantum_left : int option;  (** remaining quantum this dispatch; None = unlimited *)
}

type vp = { vp_id : int; mutable current : pid option; mutable reserved : bool }

type event = Start of pid | Resume of pid | Slice of pid | Thunk of (unit -> unit)

(* The traffic controller lives ABOVE this library (lib/sched), so
   layer 2 consults it through a neutral record of closures.  With no
   scheduler installed, layer 2 falls back to the original FIFO ready
   queue with unlimited quanta — byte-for-byte the seed behaviour.
   Dedicated processes (reserved VPs) never pass through the scheduler:
   they are the kernel mechanisms the traffic controller itself relies
   on, and preempting them could deadlock page control. *)
type scheduler = {
  sched_name : string;
  sched_enqueue : pid -> unit;  (** a process became ready (spawn or counted wakeup) *)
  sched_select : vp:int -> pid option;
      (** pick the next process for the given free VP; under a
          multiprocessor plant the VP index identifies the simulated
          CPU doing the selecting, so lock contention can be charged
          to the right dispatcher *)
  sched_quantum : pid -> int option;  (** quantum for this dispatch; None = run to block *)
  sched_quantum_expired : pid -> preempted:bool -> unit;
      (** the quantum ran out; [preempted] iff compute was still owed *)
  sched_blocked : pid -> unit;  (** the process surrendered its VP to wait *)
  sched_retired : pid -> unit;  (** the process terminated *)
  sched_backlog : unit -> int;  (** ready + admission-stalled processes it holds *)
}

type t = {
  clock : Clock.t;
  cost : Cost.t;
  events : event Event_queue.t;
  procs : (pid, process) Hashtbl.t;
  mutable ready : pid Multics_util.Fqueue.t;
  mutable ready_dedicated : pid Multics_util.Fqueue.t;
      (** dedicated processes awaiting their reserved VP; kept apart so
          finding one is O(1), not a scan of the whole process table *)
  vps : vp array;
  mutable free_vps : int list;  (** shared idle VPs, lowest id first *)
  mutable next_pid : int;
  mutable next_chan : int;
  mutable trace : (int * string) list;  (** reversed *)
  mutable trace_enabled : bool;
  mutable faults : Multics_fault.Fault.Injector.t option;
  mutable scheduler : scheduler option;
  counters : Multics_util.Stats.Counters.t;
}

exception Process_crashed
(* An injected crash: delivered at a compute point, caught by the
   process handler like any other body exception, so the victim is
   terminated and its failure recorded — never silently continued. *)

(* Effects understood by the scheduler.  The payload of [Block] also
   names the blocking process so the handler needn't look it up. *)
type _ Effect.t += Compute : int -> unit Effect.t | Block_on : chan -> unit Effect.t

let create ~cost ~virtual_processors =
  if virtual_processors <= 0 then invalid_arg "Sim.create: need at least one virtual processor";
  {
    clock = Clock.create ();
    cost;
    events = Event_queue.create ();
    procs = Hashtbl.create 64;
    ready = Multics_util.Fqueue.empty;
    ready_dedicated = Multics_util.Fqueue.empty;
    vps = Array.init virtual_processors (fun vp_id -> { vp_id; current = None; reserved = false });
    free_vps = List.init virtual_processors (fun i -> i);
    next_pid = 1;
    next_chan = 1;
    trace = [];
    trace_enabled = false;
    faults = None;
    scheduler = None;
    counters = Multics_util.Stats.Counters.create ();
  }

let set_faults t injector = t.faults <- injector

let fault_injector t = t.faults

let set_scheduler t scheduler = t.scheduler <- scheduler

let scheduler_installed t = Option.map (fun s -> s.sched_name) t.scheduler

let now t = Clock.now t.clock

let cost_model t = t.cost

let counters t = t.counters

let set_trace t enabled = t.trace_enabled <- enabled

let trace t message =
  if t.trace_enabled then t.trace <- (now t, message) :: t.trace

let tracef t fmt = Format.kasprintf (trace t) fmt

let trace_lines t = List.rev t.trace

(* ----- Channels ----- *)

let new_channel t ~name =
  let chan_id = t.next_chan in
  t.next_chan <- chan_id + 1;
  { chan_id; chan_name = name; waiters = Multics_util.Fqueue.empty; pending = 0 }

let channel_name c = c.chan_name

let waiter_count c = Multics_util.Fqueue.length c.waiters

let pending_wakeups c = c.pending

(* ----- Process table ----- *)

let proc t pid =
  match Hashtbl.find_opt t.procs pid with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Sim: unknown pid %d" pid)

let name_of t pid = (proc t pid).pname
let ring_of t pid = (proc t pid).ring
let set_ring t pid ring = (proc t pid).ring <- ring
let state_of t pid = (proc t pid).state
let cycles_of t pid = (proc t pid).cycles_used
let block_count_of t pid = (proc t pid).block_count
let perturbations_of t pid = (proc t pid).perturbation_count
let failure_of t pid = (proc t pid).failure
let exit_channel t pid = (proc t pid).exit_chan

let processes t =
  Hashtbl.fold (fun pid _ acc -> pid :: acc) t.procs [] |> List.sort Int.compare

(* ----- Layer 2: binding processes to virtual processors ----- *)

let bind_to_vp t p vp =
  vp.current <- Some p.pid;
  p.state <- Running;
  Multics_util.Stats.Counters.incr t.counters "dispatches";
  (* A fresh quantum per dispatch; dedicated kernel processes run
     unclocked even under a traffic controller. *)
  (match t.scheduler with
  | Some s when p.dedicated_vp = None -> p.quantum_left <- s.sched_quantum p.pid
  | _ -> p.quantum_left <- None);
  let start_time = now t + t.cost.Cost.process_switch in
  let event = match p.cont with None -> Start p.pid | Some _ -> Resume p.pid in
  Event_queue.push t.events ~time:start_time event

(* The next runnable process: the traffic controller's choice when one
   is installed, the plain FIFO ready queue otherwise.  Only called
   with a VP in hand — selection removes the pid from its queue. *)
let next_ready t ~vp =
  match t.scheduler with
  | Some s -> s.sched_select ~vp
  | None -> (
      match Multics_util.Fqueue.pop t.ready with
      | Some (pid, rest) ->
          t.ready <- rest;
          Some pid
      | None -> None)

let rec dispatch t =
  match p_dedicated_waiting t with
  | Some (p, vp) ->
      bind_to_vp t p vp;
      dispatch t
  | None -> (
      match t.free_vps with
      | [] -> ()
      | vp_id :: vps -> (
          match next_ready t ~vp:vp_id with
          | None -> ()
          | Some pid ->
              let p = proc t pid in
              (* A woken process may have terminated meanwhile only via
                 simulator misuse; states here are Ready by construction. *)
              t.free_vps <- vps;
              bind_to_vp t p t.vps.(vp_id);
              dispatch t))

(* Dedicated processes bypass the shared ready queue: their VP is
   reserved for them alone, so a ready dedicated process binds
   immediately — its VP cannot be held by anyone else. *)
and p_dedicated_waiting t =
  match Multics_util.Fqueue.pop t.ready_dedicated with
  | None -> None
  | Some (pid, rest) -> (
      t.ready_dedicated <- rest;
      let p = proc t pid in
      match p.dedicated_vp with
      | Some vp_id when p.state = Ready && t.vps.(vp_id).current = None ->
          Some (p, t.vps.(vp_id))
      | _ -> p_dedicated_waiting t (* stale entry *))

let enqueue_ready t p =
  match t.scheduler with
  | Some s -> s.sched_enqueue p.pid
  | None -> t.ready <- Multics_util.Fqueue.push t.ready p.pid

let make_ready t p =
  p.state <- Ready;
  (match p.dedicated_vp with
  | Some _ -> t.ready_dedicated <- Multics_util.Fqueue.push t.ready_dedicated p.pid
  | None -> enqueue_ready t p);
  dispatch t

let release_vp t p =
  Array.iter
    (fun vp ->
      if vp.current = Some p.pid then begin
        vp.current <- None;
        if not vp.reserved then t.free_vps <- List.sort Int.compare (vp.vp_id :: t.free_vps)
      end)
    t.vps;
  dispatch t

(* ----- Spawning ----- *)

let spawn ?(ring = Ring.user) ?(dedicated = false) t ~name body =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  let dedicated_vp =
    if not dedicated then None
    else begin
      match t.free_vps with
      | [] -> invalid_arg "Sim.spawn: no free virtual processor to dedicate"
      | vp_id :: rest ->
          t.free_vps <- rest;
          t.vps.(vp_id).reserved <- true;
          Some vp_id
    end
  in
  let p =
    {
      pid;
      pname = name;
      ring;
      body;
      dedicated_vp;
      exit_chan = new_channel t ~name:(Printf.sprintf "exit.%s" name);
      state = Unborn;
      cont = None;
      cycles_used = 0;
      block_count = 0;
      extra_delay = 0;
      perturbation_count = 0;
      failure = None;
      compute_left = 0;
      slice = 0;
      quantum_left = None;
    }
  in
  Hashtbl.replace t.procs pid p;
  Multics_util.Stats.Counters.incr t.counters "spawns";
  tracef t "spawn %s (pid %d)%s" name pid (if dedicated then " [dedicated vp]" else "");
  make_ready t p;
  pid

(* ----- Wakeups ----- *)

let rec wakeup t chan =
  Obs.Counter.incr (obs_wakeups_sent ());
  match Multics_util.Fqueue.pop chan.waiters with
  | Some (pid, rest) ->
      chan.waiters <- rest;
      Multics_util.Stats.Counters.incr t.counters "wakeups_delivered";
      Obs.Counter.incr (obs_wakeups_delivered ());
      tracef t "wakeup %s -> %s" chan.chan_name (name_of t pid);
      make_ready t (proc t pid)
  | None ->
      chan.pending <- chan.pending + 1;
      Multics_util.Stats.Counters.incr t.counters "wakeups_pending";
      Obs.Counter.incr (obs_wakeups_queued ());
      tracef t "wakeup %s (pending)" chan.chan_name

and broadcast t chan =
  if waiter_count chan > 0 then begin
    wakeup t chan;
    broadcast t chan
  end

(* ----- Effects available inside process bodies ----- *)

let compute cycles =
  if cycles < 0 then invalid_arg "Sim.compute: negative cycles";
  if cycles > 0 then Effect.perform (Compute cycles)

let block chan = Effect.perform (Block_on chan)

let yield () = Effect.perform (Compute 1)

(* ----- Execution engine ----- *)

(* Cut the owed compute into slices no longer than the remaining
   quantum.  The continuation stays parked in [cont] until the final
   slice lands with the quantum intact. *)
let schedule_slice t p =
  let chunk =
    match p.quantum_left with
    | Some q when q < p.compute_left -> max 1 q
    | _ -> p.compute_left
  in
  p.slice <- chunk;
  Event_queue.push t.events ~time:(now t + chunk) (Slice p.pid)

let terminate t p =
  p.state <- Terminated;
  p.cont <- None;
  p.compute_left <- 0;
  Multics_util.Stats.Counters.incr t.counters "terminations";
  tracef t "exit %s" p.pname;
  (match t.scheduler with
  | Some s when p.dedicated_vp = None -> s.sched_retired p.pid
  | _ -> ());
  broadcast t p.exit_chan;
  release_vp t p

let handler_for t p : (unit, unit) Effect.Deep.handler =
  {
    retc = (fun () -> terminate t p);
    exnc =
      (fun exn ->
        p.failure <- Some (Printexc.to_string exn);
        Multics_util.Stats.Counters.incr t.counters "process_faults";
        tracef t "fault in %s: %s" p.pname (Printexc.to_string exn);
        terminate t p);
    effc =
      (fun (type c) (eff : c Effect.t) ->
        match eff with
        | Compute cycles ->
            Some
              (fun (k : (c, unit) Effect.Deep.continuation) ->
                p.cycles_used <- p.cycles_used + cycles;
                match t.faults with
                | Some inj
                  when Multics_fault.Fault.Injector.fire inj Multics_fault.Fault.Proc_crash ->
                    (* The crash lands at the compute point: the body
                       sees Process_crashed, the handler records the
                       failure and terminates the process. *)
                    Effect.Deep.discontinue k Process_crashed
                | _ ->
                    p.cont <- Some k;
                    p.compute_left <- cycles;
                    schedule_slice t p)
        | Block_on chan ->
            Some
              (fun (k : (c, unit) Effect.Deep.continuation) ->
                p.block_count <- p.block_count + 1;
                Obs.Counter.incr (obs_blocks ());
                if chan.pending > 0 then begin
                  (* A counted wakeup already arrived: block returns at
                     once, exactly as in the Multics IPC. *)
                  chan.pending <- chan.pending - 1;
                  Obs.Counter.incr (obs_wakeups_consumed ());
                  Effect.Deep.continue k ()
                end
                else begin
                  p.state <- Blocked chan;
                  p.cont <- Some k;
                  chan.waiters <- Multics_util.Fqueue.push chan.waiters p.pid;
                  tracef t "%s blocks on %s" p.pname chan.chan_name;
                  (match t.scheduler with
                  | Some s when p.dedicated_vp = None -> s.sched_blocked p.pid
                  | _ -> ());
                  release_vp t p
                end)
        | _ -> None);
  }

let start_process t p = Effect.Deep.match_with (fun () -> p.body p.pid) () (handler_for t p)

let resume_process t p =
  match p.cont with
  | None -> ()
  | Some k ->
      (* Inline interrupt handling steals victim cycles: consume any
         accumulated perturbation before the process continues. *)
      if p.extra_delay > 0 then begin
        let delay = p.extra_delay in
        p.extra_delay <- 0;
        p.cycles_used <- p.cycles_used + delay;
        Event_queue.push t.events ~time:(now t + delay) (Resume p.pid)
      end
      else if p.compute_left > 0 then
        (* Rebound after a preemption: burn the owed cycles in fresh
           quantum slices before the body continues. *)
        schedule_slice t p
      else begin
        p.cont <- None;
        Effect.Deep.continue k ()
      end

(* The quantum ran out with compute still owed: unbind the processor
   and hand the process back to the traffic controller.  The
   continuation stays parked; only timing changes, never results. *)
let preempt t p =
  Multics_util.Stats.Counters.incr t.counters "preemptions";
  tracef t "preempt %s (%d cycles owed)" p.pname p.compute_left;
  p.state <- Ready;
  (match p.dedicated_vp with Some _ -> () | None -> enqueue_ready t p);
  release_vp t p

let slice_done t p =
  if p.state = Running then begin
    p.compute_left <- p.compute_left - p.slice;
    (match p.quantum_left with
    | Some q -> p.quantum_left <- Some (q - p.slice)
    | None -> ());
    let expired = match p.quantum_left with Some q -> q <= 0 | None -> false in
    if expired then begin
      Multics_util.Stats.Counters.incr t.counters "quantum_expiries";
      match t.scheduler with
      | Some s when p.dedicated_vp = None ->
          s.sched_quantum_expired p.pid ~preempted:(p.compute_left > 0)
      | _ -> ()
    end;
    if p.compute_left > 0 then preempt t p else resume_process t p
  end

(* Charge [cycles] to a process from outside (inline interrupt
   discipline).  Takes effect when the process next resumes. *)
let perturb t pid cycles =
  let p = proc t pid in
  if p.state <> Terminated then begin
    p.extra_delay <- p.extra_delay + cycles;
    p.perturbation_count <- p.perturbation_count + 1
  end

let running_pids t =
  Array.to_list t.vps
  |> List.filter_map (fun vp -> vp.current)
  |> List.sort Int.compare

(* ----- External events ----- *)

let at t ~delay thunk =
  if delay < 0 then invalid_arg "Sim.at: negative delay";
  Event_queue.push t.events ~time:(now t + delay) (Thunk thunk)

(* ----- Main loop ----- *)

(* The pure transition function: one event applied against the
   simulator state at its firing time.  [step]/[run]/[run_until] are
   drivers — pop, apply, repeat — and stay the only places that touch
   the event queue, so an external driver (the model checker) can
   replay a recorded schedule through exactly the code the kernel
   runs, with no second interpretation of what an event means. *)
let apply t ~time event =
  Clock.advance_to t.clock time;
  match event with
  | Start pid -> start_process t (proc t pid)
  | Resume pid -> resume_process t (proc t pid)
  | Slice pid -> slice_done t (proc t pid)
  | Thunk thunk -> thunk ()

let step t =
  match Event_queue.pop t.events with
  | None -> false
  | Some (time, event) ->
      apply t ~time event;
      true

let run ?(max_events = 10_000_000) t =
  let rec loop remaining =
    if remaining = 0 then failwith "Sim.run: event budget exhausted (livelock?)"
    else if step t then loop (remaining - 1)
  in
  loop max_events

let run_until t ~time =
  let rec loop () =
    match Event_queue.peek_time t.events with
    | Some next when next <= time ->
        ignore (step t);
        loop ()
    | Some _ | None -> Clock.advance_to t.clock time
  in
  loop ()

let blocked_pids t =
  Hashtbl.fold
    (fun pid p acc -> match p.state with Blocked _ -> pid :: acc | _ -> acc)
    t.procs []
  |> List.sort Int.compare

let reschedule t = dispatch t

let quiescent t =
  Event_queue.is_empty t.events
  && Multics_util.Fqueue.is_empty t.ready
  && match t.scheduler with None -> true | Some s -> s.sched_backlog () = 0
