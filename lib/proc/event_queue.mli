(** Deterministic time-ordered event queue.

    A binary min-heap keyed on [(time, insertion sequence)]: events at
    equal timestamps fire in exactly the order they were pushed.  This
    stability is load-bearing, not cosmetic — the traffic controller's
    schedule-invariance oracle (experiment E17) compares audit trails
    bit-for-bit across scheduling policies, which is only meaningful if
    the substrate never reorders simultaneous events on its own.
    Checked by the 100-seed stability property in [test/sched_test]. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:int -> 'a -> unit
(** Raises [Invalid_argument] on negative time. *)

val peek_time : 'a t -> int option

val pop : 'a t -> (int * 'a) option
(** Earliest event; ties fire strictly in insertion order (stable). *)
