(** Deterministic pseudo-random number generator (splitmix64).

    All randomness in the simulator flows through an explicit generator
    value so that every experiment is reproducible from its seed. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] makes a fresh generator.  Equal seeds give equal
    streams. *)

val copy : t -> t
(** Independent copy with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a statistically independent
    generator; use one stream per subsystem. *)

val create_labeled : seed:int -> label:string -> t
(** A stream derived from [(seed, label)] alone — independent of any
    other stream's draw order, so subsystem streams compose under one
    master seed (the fault engine keys one stream per site this way). *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  Raises
    [Invalid_argument] if [bound <= 0]. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** Uniform in the inclusive range [\[lo, hi\]]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> num:int -> den:int -> bool
(** [chance t ~num ~den] is true with probability [num/den]. *)

val choose : t -> 'a list -> 'a
(** Uniform choice.  Raises [Invalid_argument] on the empty list. *)

val shuffle : t -> 'a list -> 'a list
(** Fisher–Yates shuffle. *)

val burst_length : t -> continue_num:int -> continue_den:int -> cap:int -> int
(** Geometric burst length (at least 1, at most [cap]); each further
    element occurs with probability [continue_num/continue_den]. *)
