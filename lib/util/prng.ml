(* Deterministic pseudo-random number generator (splitmix64).

   Every stochastic component of the simulator draws from an explicit
   [Prng.t] so that experiments are reproducible run to run: the same
   seed always yields the same trace.  The algorithm is splitmix64
   (Steele, Lea & Flood 2014), which has a 64-bit state, passes BigCrush
   when used as a generator, and — crucially for a simulator — supports
   cheap independent [split]s for per-subsystem streams. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_int64 t =
  let z = Int64.add t.state golden_gamma in
  t.state <- z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = Int64.to_int (next_int64 t) in
  { state = Int64.of_int seed }

(* Labeled derivation: FNV-1a over the label folded into the seed,
   then one splitmix step to decorrelate.  Unlike [split], the derived
   stream depends only on (seed, label) — never on how many draws other
   subsystems made first — so per-site streams compose: the fault
   engine and the traffic generators can share one master seed without
   their draw orders colliding. *)
let create_labeled ~seed ~label =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
    label;
  let t = { state = Int64.add (Int64.of_int seed) !h } in
  ignore (next_int64 t);
  t

(* Masking to 62 bits keeps the result a non-negative OCaml [int] on
   64-bit platforms without biasing low bits. *)
let next_nonneg t = Int64.to_int (Int64.logand (next_int64 t) 0x3FFF_FFFF_FFFF_FFFFL)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  next_nonneg t mod bound

let int_in_range t ~lo ~hi =
  if lo > hi then invalid_arg "Prng.int_in_range: lo > hi";
  lo + int t (hi - lo + 1)

let float t bound =
  if bound <= 0.0 then invalid_arg "Prng.float: bound must be positive";
  let x = float_of_int (next_nonneg t) /. float_of_int 0x3FFF_FFFF_FFFF_FFFF in
  x *. bound

let bool t = next_nonneg t land 1 = 1

let chance t ~num ~den =
  if den <= 0 || num < 0 then invalid_arg "Prng.chance";
  int t den < num

let choose t items =
  match items with
  | [] -> invalid_arg "Prng.choose: empty list"
  | _ :: _ -> List.nth items (int t (List.length items))

let shuffle t items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

(* Geometric-ish burst length: number of trials until first failure,
   capped.  Used by the traffic generators in [Multics_io]. *)
let burst_length t ~continue_num ~continue_den ~cap =
  let rec loop n =
    if n >= cap then n
    else if chance t ~num:continue_num ~den:continue_den then loop (n + 1)
    else n
  in
  loop 1
