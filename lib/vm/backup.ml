(* The backup daemon.

   "Internal I/O functions (for managing the virtual memory, performing
   backup, and loading the system) would still be managed in the
   kernel."  Backup is another of the kernel mechanisms the paper's
   process redesign turns into a dedicated asynchronous process: it
   runs on its own virtual processor, sweeps the modified core pages to
   tape on a fixed period, and coordinates with everything else through
   ordinary wakeups — no special hooks in the fault path. *)

open Multics_mm
open Multics_proc
module Obs = Multics_obs.Obs

let obs_sweeps = Obs.Local.counter "backup.sweeps"
let obs_pages = Obs.Local.counter "backup.pages"
let obs_tape_errors = Obs.Local.counter "backup.tape_errors"
let obs_tape_giveups = Obs.Local.counter "backup.tape_giveups"
type error = Bad_period of int | Bad_sweeps of int

let pp_error ppf = function
  | Bad_period period -> Fmt.pf ppf "backup: period must be positive (got %d)" period
  | Bad_sweeps sweeps -> Fmt.pf ppf "backup: need at least one sweep (got %d)" sweeps

let error_to_json = function
  | Bad_period period ->
      Printf.sprintf {|{"error":"backup_bad_period","period":%d}|} period
  | Bad_sweeps sweeps ->
      Printf.sprintf {|{"error":"backup_bad_sweeps","sweeps":%d}|} sweeps

(* A tape write error is retried with doubled cost up to this many
   total attempts; a page whose writes all fail stays dirty — still
   vulnerable, to be caught by the next sweep. *)
let tape_attempt_cap = 3

type t = {
  sim : Sim.t;
  mem : Memory.t;
  period : int;  (** cycles between sweeps *)
  tape_cost_per_page : int;
  sweeps_wanted : int;
  kick : Sim.chan;
  mutable pid : Sim.pid option;
  mutable sweeps_done : int;
  mutable pages_backed_up : int;
  mutable tape_errors : int;
  mutable tape_giveups : int;
  mutable faults : Multics_fault.Fault.Injector.t option;
  mutable trace : (int * int) list;  (** (time, pages this sweep), reversed *)
}

let set_faults t faults = t.faults <- faults

(* Write one page to tape, retrying transient tape errors with doubled
   cost.  Returns true if the copy completed within the attempt cap. *)
let write_to_tape t =
  let rec attempt i =
    Sim.compute (t.tape_cost_per_page * (1 lsl (i - 1)));
    let failed =
      match t.faults with
      | None -> false
      | Some inj -> Multics_fault.Fault.Injector.fire inj Multics_fault.Fault.Backup_tape
    in
    if not failed then true
    else begin
      t.tape_errors <- t.tape_errors + 1;
      Obs.Counter.incr (obs_tape_errors ());
      (match t.faults with
      | Some inj -> Multics_fault.Fault.Injector.count_retry inj Multics_fault.Fault.Backup_tape
      | None -> ());
      if i >= tape_attempt_cap then begin
        t.tape_giveups <- t.tape_giveups + 1;
        Obs.Counter.incr (obs_tape_giveups ());
        (match t.faults with
        | Some inj -> Multics_fault.Fault.Injector.count_giveup inj Multics_fault.Fault.Backup_tape
        | None -> ());
        false
      end
      else attempt (i + 1)
    end
  in
  attempt 1

let daemon_body t _pid =
  for _ = 1 to t.sweeps_wanted do
    Sim.block t.kick;
    (* Sweep: copy every modified core page to tape and mark it
       clean.  The page stays where it is; backup reads it in place.
       A page whose tape writes all fail is left dirty — fail-secure
       means it stays counted as vulnerable, never silently "backed". *)
    let backed_this_sweep = ref 0 in
    List.iter
      (fun page ->
        match Memory.frame_usage t.mem page with
        | Some (_, true) ->
            if write_to_tape t then begin
              (* The tape copy is complete: the page is clean now. *)
              Memory.clean t.mem page;
              incr backed_this_sweep;
              t.pages_backed_up <- t.pages_backed_up + 1;
              Obs.Counter.incr (obs_pages ())
            end
        | Some (_, false) | None -> ())
      (Memory.core_residents t.mem);
    t.sweeps_done <- t.sweeps_done + 1;
    Obs.Counter.incr (obs_sweeps ());
    t.trace <- (Sim.now t.sim, !backed_this_sweep) :: t.trace
  done

let start ?(tape_cost_per_page = 12_000) ?faults ~period ~sweeps sim ~mem =
  if period <= 0 then Error (Bad_period period)
  else if sweeps <= 0 then Error (Bad_sweeps sweeps)
  else begin
    let t =
      {
        sim;
        mem;
        period;
        tape_cost_per_page;
        sweeps_wanted = sweeps;
        kick = Sim.new_channel sim ~name:"backup.kick";
        pid = None;
        sweeps_done = 0;
        pages_backed_up = 0;
        tape_errors = 0;
        tape_giveups = 0;
        faults;
        trace = [];
      }
    in
    t.pid <-
      Some
        (Sim.spawn sim ~dedicated:true ~ring:Multics_machine.Ring.kernel ~name:"backup-daemon"
           (daemon_body t));
    (* The period clock: one wakeup per sweep. *)
    for i = 1 to sweeps do
      Sim.at sim ~delay:(i * period) (fun () -> Sim.wakeup sim t.kick)
    done;
    Ok t
  end

let start_exn ?tape_cost_per_page ?faults ~period ~sweeps sim ~mem =
  match start ?tape_cost_per_page ?faults ~period ~sweeps sim ~mem with
  | Ok t -> t
  | Error e -> invalid_arg (Fmt.str "%a" pp_error e)

let pid t = t.pid
let sweeps_done t = t.sweeps_done
let pages_backed_up t = t.pages_backed_up
let tape_errors t = t.tape_errors
let tape_giveups t = t.tape_giveups

let sweep_trace t = List.rev t.trace

(* A page is vulnerable if modified and not yet backed up; after a
   sweep completes, nothing swept remains vulnerable. *)
let vulnerable_pages t =
  List.filter
    (fun page -> match Memory.frame_usage t.mem page with Some (_, true) -> true | _ -> false)
    (Memory.core_residents t.mem)
