(** Page control over the three-level memory hierarchy, under the old
    sequential discipline (the faulting process runs the whole eviction
    cascade) and the paper's parallel discipline (dedicated core- and
    bulk-freeing kernel processes; the faulting process just waits for
    a free frame). *)

open Multics_mm
open Multics_proc

type discipline = Sequential | Parallel_processes

val discipline_name : discipline -> string

type t

val create :
  ?core_target:int ->
  ?bulk_target:int ->
  ?zero_fill_cycles:int ->
  ?faults:Multics_fault.Fault.Injector.t ->
  Sim.t ->
  mem:Memory.t ->
  discipline:discipline ->
  t
(** [core_target]/[bulk_target] are the free-block watermarks the
    dedicated processes maintain (parallel discipline only).
    [faults] injects [Page_read]/[Page_write] parity errors and
    [Evict] failures; each costs one wasted device attempt and is
    retried unconditionally (the retry never re-consults the plan, so
    no schedule can livelock page control or change what is
    accessible). *)

val set_faults : t -> Multics_fault.Fault.Injector.t option -> unit
(** Install (or clear) the fault injector after creation. *)

val start : t -> unit
(** Spawn the dedicated kernel processes (parallel discipline; no-op
    for sequential).  Idempotent.  Each reserves a virtual processor. *)

val core_freer_pid : t -> Sim.pid option
val bulk_freer_pid : t -> Sim.pid option

val reference : ?write:bool -> t -> pid:Sim.pid -> page:Page_id.t -> int
(** Touch a page from inside a running process body ([pid] is the
    caller's own pid, used for fault attribution).  Handles the page
    fault if the page is not in core.  Returns the number of
    page-control steps the faulting process itself executed (0 on a
    hit). *)

type victim_policy = Page_id.t list -> (Page_id.t * bool) list -> Page_id.t option

val set_victim_policy : t -> victim_policy -> unit
(** Replace the eviction policy (default: second-chance clock).  Used
    by the policy/mechanism partitioning experiment. *)

val memory : t -> Memory.t
val counters : t -> Multics_util.Stats.Counters.t

(** {1 The PTW lookaside}

    A {!Multics_cache.Avc}-backed cache of pages known core-resident,
    keyed by dense page SIDs ({!Multics_access.Sid.t}): a page id is
    interned once on first reference and the cache then works on small
    ints with an identity hash, which also keeps the shared generation
    counters dense (no sparse-table compaction storms).  A hit skips
    the page-table walk ([Cost.ptw_fetch]); eviction invalidates the
    victim's entry in the same step it leaves core.  Obs counters
    under ["cache.vm.ptw.*"]. *)

val page_sid : t -> Page_id.t -> Multics_access.Sid.t
(** The page's dense SID (interned on first sight, never reused).
    The key the per-CPU PTW fronts (lib/smp) take. *)

val flush_ptw : t -> unit

val ptw_stats : t -> (string * int) list
(** [("size", _)] plus the obs counter readings. *)

val ptw_hit_ratio : t -> float

val check_ptw_invariant : t -> bool
(** Every page the lookaside would vouch for is core-resident. *)

val ptw_gens : t -> Multics_cache.Avc.Gen.t
(** The lookaside's generation counters, for per-CPU PTW fronts to
    share: an eviction's bump stales every sharing cache at once. *)

(** {1 Fault accounting} *)

type fault_record = {
  pid : Sim.pid;
  page : Page_id.t;
  latency : int;
  steps : int;
  cascaded : bool;  (** the faulting process freed core itself *)
  deep_cascade : bool;  (** ... and had to free bulk store too *)
}

val faults : t -> fault_record list
(** In fault-completion order. *)

val fault_count : t -> int

type summary = {
  discipline : discipline;
  fault_total : int;
  latency : Multics_util.Stats.summary;
  steps : Multics_util.Stats.summary;
  cascaded_faults : int;
  deep_cascade_faults : int;
}

val summarize : t -> summary
