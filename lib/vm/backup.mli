(** The backup daemon: a dedicated kernel process sweeping modified
    core pages to tape on a fixed period — one of the internal I/O
    functions the paper keeps in the kernel, implemented as an
    asynchronous parallel process. *)

open Multics_mm
open Multics_proc

type t

type error = Bad_period of int | Bad_sweeps of int

val pp_error : Format.formatter -> error -> unit

val error_to_json : error -> string
(** Same rendering conventions as [Api.error_to_json]. *)

val start :
  ?tape_cost_per_page:int ->
  ?faults:Multics_fault.Fault.Injector.t ->
  period:int ->
  sweeps:int ->
  Sim.t ->
  mem:Memory.t ->
  (t, error) result
(** Spawn the daemon on a dedicated virtual processor and schedule
    [sweeps] period wakeups.  Returns [Error] on a non-positive
    period or sweep count.  [faults] injects [Backup_tape] write
    errors: each retry doubles the tape cost, and after three failed
    attempts the page is given up on and stays dirty (still
    vulnerable) for the next sweep. *)

val start_exn :
  ?tape_cost_per_page:int ->
  ?faults:Multics_fault.Fault.Injector.t ->
  period:int ->
  sweeps:int ->
  Sim.t ->
  mem:Memory.t ->
  t
(** [start], raising [Invalid_argument] on bad parameters — for
    callers that have already validated them. *)

val set_faults : t -> Multics_fault.Fault.Injector.t option -> unit

val pid : t -> Sim.pid option
val sweeps_done : t -> int
val pages_backed_up : t -> int

val tape_errors : t -> int
(** Injected tape write errors observed (also [backup.tape_errors] in
    the obs registry). *)

val tape_giveups : t -> int
(** Pages abandoned after exhausting the retry budget in one sweep. *)

val sweep_trace : t -> (int * int) list
(** (completion time, pages backed up) per sweep. *)

val vulnerable_pages : t -> Page_id.t list
(** Core pages still modified and unbacked. *)
