(* Page control: moving pages among the three memory levels.

   Two disciplines, from the paper:

   - [Sequential] (the old design): "this complex series of steps
     occurs sequentially with page control executing in the process
     which took the page fault".  On a fault with no free core block
     the faulting process itself evicts a core page to the bulk store,
     first evicting a bulk page to disk if the bulk store is full too —
     the full cascade, charged to the faulting process.

   - [Parallel_processes] (the new design): one dedicated kernel
     process "runs in a loop making sure that some small number of free
     primary memory blocks always exist"; a second keeps space free on
     the bulk store and "is driven ... by the primary memory freeing
     process".  The faulting process "can just wait until a primary
     memory block is free and then initiate the transfer of the desired
     page into primary memory".

   Victim selection is a second-chance clock over the used bits — the
   mechanism half of page removal.  The policy half can be overridden
   (experiment E9 injects malicious policies through the kernel's
   policy/mechanism gate layer). *)

open Multics_mm
open Multics_proc
module Obs = Multics_obs.Obs
module Avc = Multics_cache.Avc
module Sid = Multics_access.Sid

(* Observability: page control's live counters mirror the per-instance
   [counters] bag but land in the global registry, where the shell's
   [stats] command and the experiment [--stats] snapshots can see them
   next to the gate and IPC numbers. *)
let obs_faults = Obs.Local.counter "vm.faults"
let obs_zero_fills = Obs.Local.counter "vm.zero_fills"
let obs_page_ins = Obs.Local.counter "vm.page_ins"
let obs_core_to_bulk = Obs.Local.counter "vm.evictions.core_to_bulk"
let obs_bulk_to_disk = Obs.Local.counter "vm.evictions.bulk_to_disk"
let obs_cascaded = Obs.Local.counter "vm.faults.cascaded"
let obs_freer_wakeups = Obs.Local.counter "vm.freer.wakeups"
let obs_frame_waits = Obs.Local.counter "vm.faults.frame_waits"
let obs_fault_latency = Obs.Local.histogram "vm.fault.latency_cycles"
type discipline = Sequential | Parallel_processes

let discipline_name = function
  | Sequential -> "sequential"
  | Parallel_processes -> "parallel-processes"

type fault_record = {
  pid : Sim.pid;
  page : Page_id.t;
  latency : int;  (** cycles from fault to page-in completion *)
  steps : int;  (** distinct page-control steps run in the faulting process *)
  cascaded : bool;  (** the faulting process had to free core itself *)
  deep_cascade : bool;  (** ... and had to free bulk store too *)
}

type victim_policy = Page_id.t list -> (Page_id.t * bool) list -> Page_id.t option
(** Given core residents (rotation order) and their (page, used-bit)
    pairs, choose an eviction victim.  The default is second-chance. *)

type t = {
  sim : Sim.t;
  mem : Memory.t;
  discipline : discipline;
  core_target : int;  (** parallel: keep at least this many core frames free *)
  bulk_target : int;
  zero_fill_cycles : int;
  frame_avail : Sim.chan;  (** one wakeup per frame freed by the core freer *)
  core_kick : Sim.chan;
  bulk_kick : Sim.chan;
  bulk_avail : Sim.chan;
  mutable victim_policy : victim_policy;
  mutable clock_hand : int;
  mutable faults : fault_record list;  (** reversed *)
  mutable core_freer_pid : Sim.pid option;
  mutable bulk_freer_pid : Sim.pid option;
  mutable fault_inj : Multics_fault.Fault.Injector.t option;
  counters : Multics_util.Stats.Counters.t;
  (* The PTW lookaside: pages known core-resident, so a repeat
     reference skips the page-table walk ([Cost.ptw_fetch]).  Sound
     because the only paths that move a page out of core — the eviction
     pushes below — invalidate the victim's entry in the same step.

     Keyed by dense page SIDs, not hashed page ids: a page id is
     interned once (on its first reference) and the cache then works
     on small ints with an identity hash.  Dense SIDs also keep the
     shared generation counters in [Gen]'s dense array — hashed ids
     landed in the sparse table and churned it toward epoch
     compactions (system-wide miss storms) on long runs. *)
  page_sids : Page_id.t Sid.Map.t;
  ptw : (int, unit) Avc.t;
}

(* The page's dense SID — interned on first sight, stable for the
   instance's lifetime (SIDs are never reused, so an evicted page's
   generation history stays its own). *)
let page_sid t page = Sid.Map.intern t.page_sids page

let ptw_key t page = Sid.to_int (page_sid t page)

(* Injected storage faults follow one fail-secure rule: a fault costs a
   wasted device attempt (charged to whoever runs the step) and is then
   retried unconditionally — the retry never re-consults the plan, so
   an every:1 schedule slows the system down but cannot livelock it,
   and no fault ever changes what a process is allowed to touch. *)
let fire t site =
  match t.fault_inj with
  | None -> false
  | Some inj -> Multics_fault.Fault.Injector.fire inj site

let note_retry t site =
  match t.fault_inj with
  | None -> ()
  | Some inj -> Multics_fault.Fault.Injector.count_retry inj site

(* ----- Victim selection (mechanism) ----- *)

(* The second-chance clock: sweep from the hand; a used page the hand
   passes loses its bit (its second chance) and survives; the first
   unused page is the victim.  Only pages the hand actually passes are
   cleared — the sweep is what ages the usage information. *)
let default_policy t : victim_policy =
 fun residents usage ->
  let n = List.length residents in
  if n = 0 then None
  else begin
    let arr = Array.of_list residents in
    let used = Array.of_list (List.map (fun page -> try List.assoc page usage with Not_found -> false) residents) in
    let start = t.clock_hand mod n in
    let rec sweep i =
      if i >= 2 * n then Some arr.(start) (* everything used twice over: take the oldest *)
      else begin
        let idx = (start + i) mod n in
        if used.(idx) then begin
          used.(idx) <- false;
          Memory.clear_used t.mem arr.(idx);
          sweep (i + 1)
        end
        else begin
          t.clock_hand <- idx + 1;
          Some arr.(idx)
        end
      end
    in
    sweep 0
  end

let create ?(core_target = 2) ?(bulk_target = 2) ?(zero_fill_cycles = 300) ?faults sim ~mem ~discipline =
  let t =
    {
      sim;
      mem;
      discipline;
      core_target;
      bulk_target;
      zero_fill_cycles;
      frame_avail = Sim.new_channel sim ~name:"pc.frame_avail";
      core_kick = Sim.new_channel sim ~name:"pc.core_kick";
      bulk_kick = Sim.new_channel sim ~name:"pc.bulk_kick";
      bulk_avail = Sim.new_channel sim ~name:"pc.bulk_avail";
      victim_policy = (fun _ _ -> None);
      clock_hand = 0;
      faults = [];
      core_freer_pid = None;
      bulk_freer_pid = None;
      fault_inj = faults;
      counters = Multics_util.Stats.Counters.create ();
      page_sids = Sid.Map.create ~hash:Page_id.hash ~equal:Page_id.equal ();
      ptw = Avc.create ~capacity:64 ~hash:(fun sid -> sid) ~equal:Int.equal ~name:"vm.ptw" ();
    }
  in
  t.victim_policy <- default_policy t;
  t

let set_victim_policy t policy = t.victim_policy <- policy

let set_faults t faults = t.fault_inj <- faults

let counters t = t.counters

let memory t = t.mem

(* ----- Shared mechanics ----- *)

let core_usage t =
  List.map
    (fun page ->
      match Memory.frame_usage t.mem page with
      | Some (used, _) -> (page, used)
      | None -> (page, false))
    (Memory.core_residents t.mem)

let choose_core_victim t =
  let residents = Memory.core_residents t.mem in
  t.victim_policy residents (core_usage t)

(* Oldest-first is fine for the bulk store: no usage bits there. *)
let choose_bulk_victim t =
  match Memory.residents t.mem Level.Bulk with [] -> None | page :: _ -> Some page

(* Free one bulk block by pushing a bulk page to disk.  Returns the
   cycle cost incurred. *)
let push_bulk_page_to_disk t =
  match choose_bulk_victim t with
  | None -> 0
  | Some victim -> (
      match Memory.transfer t.mem victim ~dest:Level.Disk with
      | Ok (_, cost) ->
          Multics_util.Stats.Counters.incr t.counters "bulk_to_disk";
          Obs.Counter.incr (obs_bulk_to_disk ());
          (* Write parity error on the disk copy: the page is written
             again; the first (bad) attempt is pure wasted cost. *)
          let cost =
            if fire t Multics_fault.Fault.Page_write then begin
              note_retry t Multics_fault.Fault.Page_write;
              2 * cost
            end
            else cost
          in
          cost
      | Error _ -> 0)

(* Free one core frame by pushing a core page to the bulk store,
   cascading to disk if the bulk store is full.  Returns (cost,
   deep_cascade). *)
let push_core_page_to_bulk t =
  let cascade_cost = if Memory.free_count t.mem Level.Bulk = 0 then push_bulk_page_to_disk t else 0 in
  match choose_core_victim t with
  | None -> (cascade_cost, cascade_cost > 0)
  | Some victim -> (
      match Memory.transfer t.mem victim ~dest:Level.Bulk with
      | Ok (_, cost) ->
          (* The victim leaves core: its lookaside entry dies now, not
             when someone notices — same discipline as the AVC. *)
          Avc.invalidate_object t.ptw (ptw_key t victim);
          Multics_util.Stats.Counters.incr t.counters "core_to_bulk";
          Obs.Counter.incr (obs_core_to_bulk ());
          (* Eviction failure: the bulk-store write is lost and redone
             once, unconditionally — retries never re-consult the plan. *)
          let cost =
            if fire t Multics_fault.Fault.Evict then begin
              note_retry t Multics_fault.Fault.Evict;
              2 * cost
            end
            else cost
          in
          (cascade_cost + cost, cascade_cost > 0)
      | Error _ -> (cascade_cost, cascade_cost > 0))

(* Bring [page] into core, charging the fault-taking process.  The
   caller guarantees a free frame may exist; on a lost race the caller
   retries.  Returns true on success. *)
let page_in t page =
  match Memory.location t.mem page with
  | None -> (
      (* First touch: a zero page needs only a frame and a clear. *)
      match Memory.place t.mem page ~level:Level.Core with
      | Ok _ ->
          Sim.compute t.zero_fill_cycles;
          Multics_util.Stats.Counters.incr t.counters "zero_fill";
          Obs.Counter.incr (obs_zero_fills ());
          true
      | Error _ -> false)
  | Some block when Level.equal (Block.level block) Level.Core -> true
  | Some _ -> (
      match Memory.transfer t.mem page ~dest:Level.Core with
      | Ok (_, cost) ->
          (* Read parity error on the incoming copy: the faulting
             process pays for the bad read, then the re-read succeeds. *)
          if fire t Multics_fault.Fault.Page_read then begin
            note_retry t Multics_fault.Fault.Page_read;
            Sim.compute cost
          end;
          Sim.compute cost;
          Multics_util.Stats.Counters.incr t.counters "page_in";
          Obs.Counter.incr (obs_page_ins ());
          true
      | Error _ -> false)

(* ----- The dedicated kernel processes (parallel discipline) ----- *)

let core_freer_body t _pid =
  let rec loop () =
    Sim.block t.core_kick;
    let rec top_up () =
      if Memory.free_count t.mem Level.Core < t.core_target then begin
        if Memory.free_count t.mem Level.Bulk = 0 then begin
          (* Drive the bulk freeing process and wait for space. *)
          Sim.wakeup t.sim t.bulk_kick;
          Sim.block t.bulk_avail
        end;
        let cost, _ = push_core_page_to_bulk t in
        if cost > 0 then begin
          Sim.compute cost;
          Sim.wakeup t.sim t.frame_avail;
          top_up ()
        end
        (* cost = 0: nothing evictable (core empty or race); stop. *)
      end
    in
    top_up ();
    loop ()
  in
  loop ()

let bulk_freer_body t _pid =
  let rec loop () =
    Sim.block t.bulk_kick;
    let rec top_up () =
      if Memory.free_count t.mem Level.Bulk < t.bulk_target then begin
        let cost = push_bulk_page_to_disk t in
        if cost > 0 then begin
          Sim.compute cost;
          top_up ()
        end
      end
    in
    top_up ();
    (* Always answer the kick, even when nothing could be pushed, so
       the core freer never waits forever on a hopeless bulk store. *)
    Sim.wakeup t.sim t.bulk_avail;
    loop ()
  in
  loop ()

let start t =
  match t.discipline with
  | Sequential -> ()
  | Parallel_processes ->
      if t.core_freer_pid = None then begin
        t.core_freer_pid <-
          Some
            (Sim.spawn t.sim ~dedicated:true ~ring:Multics_machine.Ring.kernel
               ~name:"pc.core-freer" (core_freer_body t));
        t.bulk_freer_pid <-
          Some
            (Sim.spawn t.sim ~dedicated:true ~ring:Multics_machine.Ring.kernel
               ~name:"pc.bulk-freer" (bulk_freer_body t))
      end

let core_freer_pid t = t.core_freer_pid
let bulk_freer_pid t = t.bulk_freer_pid

(* ----- The fault path ----- *)

let record_fault t record =
  t.faults <- record :: t.faults;
  Multics_util.Stats.Counters.incr t.counters "faults";
  if Obs.enabled () then begin
    Obs.Counter.incr (obs_faults ());
    Obs.Histogram.observe (obs_fault_latency ()) record.latency;
    if record.cascaded then Obs.Counter.incr (obs_cascaded ())
  end

(* Reference a page from a running process.  Returns the number of
   page-control steps the faulting process itself executed (0 when the
   page was already in core). *)
let reference ?(write = false) t ~pid ~page =
  let cost = Sim.cost_model t.sim in
  let resident_in_core () =
    match Memory.location t.mem page with
    | Some block -> Level.equal (Block.level block) Level.Core
    | None -> false
  in
  let sid = ptw_key t page in
  if Avc.find t.ptw sid <> None then begin
    (* PTW hit: the lookaside vouches for core residency, so the
       reference costs only the access itself — no page-table walk. *)
    Sim.compute cost.Multics_machine.Cost.memory_reference;
    if write then Memory.dirty t.mem page else Memory.touch t.mem page;
    0
  end
  else if resident_in_core () then begin
    (* Resident, but not in the lookaside: walk the page table and
       install the PTW, as the 6180 does on an associative miss. *)
    Sim.compute
      (cost.Multics_machine.Cost.memory_reference + cost.Multics_machine.Cost.ptw_fetch);
    Avc.add t.ptw ~obj:sid sid ();
    if write then Memory.dirty t.mem page else Memory.touch t.mem page;
    0
  end
  else begin
    let started = Sim.now t.sim in
    Sim.compute cost.Multics_machine.Cost.fault_overhead;
    let steps = ref 1 in
    let cascaded = ref false in
    let deep = ref false in
    let rec settle () =
      if Memory.free_count t.mem Level.Core = 0 then begin
        (match t.discipline with
        | Sequential ->
            (* The faulting process runs the whole cascade itself. *)
            let move_cost, was_deep = push_core_page_to_bulk t in
            cascaded := true;
            if was_deep then deep := true;
            incr steps;
            if move_cost > 0 then Sim.compute move_cost
        | Parallel_processes ->
            (* Just wait for the core freeing process. *)
            Obs.Counter.incr (obs_freer_wakeups ());
            Obs.Counter.incr (obs_frame_waits ());
            Sim.wakeup t.sim t.core_kick;
            Sim.block t.frame_avail;
            incr steps);
        settle ()
      end
      else if page_in t page then ()
      else settle () (* lost the free frame to a racing faulter *)
    in
    settle ();
    Avc.add t.ptw ~obj:sid sid ();
    if write then Memory.dirty t.mem page else Memory.touch t.mem page;
    (* Keep the freer running ahead of demand. *)
    (match t.discipline with
    | Parallel_processes ->
        if Memory.free_count t.mem Level.Core < t.core_target then begin
          Obs.Counter.incr (obs_freer_wakeups ());
          Sim.wakeup t.sim t.core_kick
        end
    | Sequential -> ());
    incr steps;
    record_fault t
      {
        pid;
        page;
        latency = Sim.now t.sim - started;
        steps = !steps;
        cascaded = !cascaded;
        deep_cascade = !deep;
      };
    !steps
  end

(* ----- The PTW lookaside, exposed ----- *)

let flush_ptw t = Avc.flush t.ptw
let ptw_stats t = ("size", Avc.size t.ptw) :: Avc.counters t.ptw

(* The lookaside's generation counters, exposed so per-CPU PTW fronts
   (lib/smp) can share them: an eviction's bump then stales every
   CPU's front in the same step it stales this cache. *)
let ptw_gens t = Avc.gens t.ptw
let ptw_hit_ratio t = Avc.hit_ratio t.ptw

(* Soundness of the lookaside: every page it would vouch for really is
   core-resident.  Checked by tests after eviction storms.  Keys are
   SIDs; the registry maps them back to the page ids they name. *)
let check_ptw_invariant t =
  List.for_all
    (fun sid ->
      let page = Sid.Map.value t.page_sids (Sid.of_int sid) in
      match Memory.location t.mem page with
      | Some block -> Level.equal (Block.level block) Level.Core
      | None -> false)
    (Avc.keys t.ptw)

(* ----- Reporting ----- *)

let faults t = List.rev t.faults

let fault_count t = List.length t.faults

type summary = {
  discipline : discipline;
  fault_total : int;
  latency : Multics_util.Stats.summary;
  steps : Multics_util.Stats.summary;
  cascaded_faults : int;
  deep_cascade_faults : int;
}

let summarize t =
  let fs = faults t in
  {
    discipline = t.discipline;
    fault_total = List.length fs;
    latency = Multics_util.Stats.summarize_ints (List.map (fun (f : fault_record) -> f.latency) fs);
    steps = Multics_util.Stats.summarize_ints (List.map (fun (f : fault_record) -> f.steps) fs);
    cascaded_faults = List.length (List.filter (fun f -> f.cascaded) fs);
    deep_cascade_faults = List.length (List.filter (fun f -> f.deep_cascade) fs);
  }
