(* Discretionary access control lists.

   Each branch in the storage hierarchy carries an ACL: an ordered set
   of (principal pattern -> mode) entries.  Evaluation follows the
   Multics rule: the most specific matching entry decides, with the
   person component most significant.  An explicit null-mode entry is
   how access is denied to a specific principal while a broader entry
   grants it to everyone else. *)

open Multics_machine

type entry = { pattern : Principal.pattern; mode : Mode.t }

type t = entry list (* kept sorted, most specific first *)

let empty = []

(* Mutation hook.  ACLs are pure values, so "mutation" means producing a
   modified list — but cached access decisions derive from ACL contents,
   and a cache that misses a revocation is a security hole.  Every entry
   point that produces a modified ACL therefore bumps a module-level
   generation and notifies subscribers, so observers (the AVC, audit,
   future subscribers) cannot miss an edit even if a caller stores the
   new list somewhere unexpected.  Callers that track *which* object
   changed layer per-object generations on top (see Hierarchy).

   The counter and subscriber list are domain-local: a kernel booted on
   a worker domain (a parallel per-seed experiment task) subscribes its
   own caches in that domain, and its ACL edits must not fan out to —
   or race with — kernels living on other domains. *)
type mutation_state = { mutable generation : int; mutable subscribers : (unit -> unit) list }

let state_key = Domain.DLS.new_key (fun () -> { generation = 0; subscribers = [] })

let generation () = (Domain.DLS.get state_key).generation

let on_change f =
  let s = Domain.DLS.get state_key in
  s.subscribers <- f :: s.subscribers

let note_mutation () =
  let s = Domain.DLS.get state_key in
  s.generation <- s.generation + 1;
  List.iter (fun f -> f ()) s.subscribers

let entry_compare a b =
  (* Most specific first; ties broken by pattern text for determinism. *)
  match
    Int.compare (Principal.pattern_specificity b.pattern) (Principal.pattern_specificity a.pattern)
  with
  | 0 ->
      String.compare
        (Principal.pattern_to_string a.pattern)
        (Principal.pattern_to_string b.pattern)
  | c -> c

let add t ~pattern ~mode =
  note_mutation ();
  let without =
    List.filter
      (fun e -> Principal.pattern_to_string e.pattern <> Principal.pattern_to_string pattern)
      t
  in
  List.sort entry_compare ({ pattern; mode } :: without)

let add_string t ~pattern ~mode =
  add t ~pattern:(Principal.pattern_of_string pattern) ~mode:(Mode.of_string mode)

let remove t ~pattern =
  note_mutation ();
  List.filter
    (fun e -> Principal.pattern_to_string e.pattern <> Principal.pattern_to_string pattern)
    t

let of_entries entries =
  List.fold_left (fun acc (pattern, mode) -> add acc ~pattern ~mode) empty entries

let of_strings entries =
  List.fold_left (fun acc (pattern, mode) -> add_string acc ~pattern ~mode) empty entries

let entries t = List.map (fun e -> (e.pattern, e.mode)) t

let mode_for t principal =
  match List.find_opt (fun e -> Principal.matches e.pattern principal) t with
  | Some e -> e.mode
  | None -> Mode.none

let permits t principal ~requested = Mode.subset requested (mode_for t principal)

let pp ppf t =
  let pp_entry ppf e = Fmt.pf ppf "%a %a" Mode.pp e.mode Principal.pp_pattern e.pattern in
  Fmt.(list ~sep:semi pp_entry) ppf t
