(* The compiled access-vector table: the mediation hot path as two
   array loads.

   Policy + ring brackets, compiled per (subject SID, object uid) into
   a handful of access-vector bits in a preallocated 2-D int array.  A
   reference asks "does the cell cover the requested mode's bits?" —
   one multiply-add index, three array reads (vector + two generation
   stamps), one mask compare.  No allocation, no hashing, no
   structured comparison: the flat-table analogue of the 6180 paying
   full mediation cost only on an associative-memory miss, and the
   SELinux access-vector-table arrangement applied to the paper's
   kernel.

   Revocation correctness is inherited, not re-proven: every cell is
   stamped with the same {!Multics_cache.Avc.Gen} epoch counters that
   governed the PR-3 verdict cache.  An ACL edit, label change,
   bracket change, delete, rename or salvage bumps a counter exactly
   as before, and a stamped cell whose counters moved reads as empty —
   the table is "rebuilt incrementally" by lazy refill on the next
   reference (an eager [rebuild] exists for measurement and for
   warming).  A stale Permit therefore cannot outlive the authority
   that granted it, by the same argument as before.

   The bit encoding is sound because permission is conjunctive per
   mode bit: [Policy.check] refuses iff some requested bit lacks its
   (mandatory AND discretionary) grant, and the ring-bracket rule
   refuses iff some requested bit lacks its bracket grant.  So a
   6-bit vector — r/e/w policy bits plus bracket-read/bracket-write —
   decides every (subject, object, mode) question exactly.  The
   refusal DETAILS (which mechanism, which labels) are not in the
   table; a covered request Permits directly, anything else falls to
   the structured recompute path, which is also what keeps audit
   refusal counters and refusal lists byte-identical to the uncached
   kernel. *)

open Multics_machine
module Obs = Multics_obs.Obs
module Gen = Multics_cache.Avc.Gen

(* ----- Access-vector bits ----- *)

let bit_read = 1
let bit_execute = 2
let bit_write = 4
let bit_bracket_read = 8
let bit_bracket_write = 16

(* The bits a request must cover: observe bits need the read bracket,
   the modify bit needs the write bracket — exactly the split of
   [Hierarchy.ring_refusals]. *)
let required (m : Mode.t) =
  (if m.Mode.read then bit_read lor bit_bracket_read else 0)
  lor (if m.Mode.execute then bit_execute lor bit_bracket_read else 0)
  lor if m.Mode.write then bit_write lor bit_bracket_write else 0

let covers ~av ~need = av land need = need

(* Compile one cell: the conjunctive form of [Policy.check] (with the
   trusted-subject carve-out) and the bracket rule.  The E19 oracle
   and the unit tests hold this pointwise equal to the structured
   path. *)
let compute ~(subject : Policy.subject) ~object_label ~acl ~brackets =
  let granted = Acl.mode_for acl subject.Policy.principal in
  let observe_ok =
    subject.Policy.trusted || Label.dominates subject.Policy.clearance object_label
  in
  let modify_ok =
    subject.Policy.trusted || Label.dominates object_label subject.Policy.clearance
  in
  let ring = subject.Policy.ring in
  (if granted.Mode.read && observe_ok then bit_read else 0)
  lor (if granted.Mode.execute && observe_ok then bit_execute else 0)
  lor (if granted.Mode.write && modify_ok then bit_write else 0)
  lor (if Brackets.read_ok brackets ~ring then bit_bracket_read else 0)
  lor if Brackets.write_ok brackets ~ring then bit_bracket_write else 0

let pp_av ppf av =
  let bit b c = if av land b <> 0 then c else '-' in
  Fmt.pf ppf "%c%c%c/%c%c" (bit bit_read 'r') (bit bit_execute 'e') (bit bit_write 'w')
    (bit bit_bracket_read 'R') (bit bit_bracket_write 'W')

(* ----- The table ----- *)

(* Columns are object uids (already a dense SID space); cells for uids
   past this bound are never cached — they recompute, exactly like a
   miss.  Matches [Gen]'s dense range, so every cached column has a
   dense (array-read) generation counter. *)
let max_objects = 1 lsl 16

type t = {
  name : string;
  gens : Gen.t;
  sids : Policy.Subject_sids.t;  (** row minting: subject identity -> row index *)
  mutable rows : int;  (** allocated row capacity *)
  mutable cols : int;  (** allocated column capacity (the row stride) *)
  mutable av : int array;  (** rows x cols access vectors *)
  mutable g_global : int array;  (** per-cell global stamp; -1 = empty *)
  mutable g_obj : int array;  (** per-cell object stamp *)
  mutable max_obj : int;  (** highest uid ever cached, bounds the size scan *)
  mutable flush_probe : (unit -> bool) option;
  hits : Obs.Counter.t;
  misses : Obs.Counter.t;
  invalidations : Obs.Counter.t;
  insertions : Obs.Counter.t;
  flushes : Obs.Counter.t;
}

let counter name field =
  Obs.Registry.counter (Obs.Registry.global ()) (Printf.sprintf "cache.%s.%s" name field)

let rec pow2_at_least n acc = if acc >= n then acc else pow2_at_least n (acc * 2)

let create ?(subjects = 16) ?(objects = 256) ?gens ~name () =
  let gens = match gens with Some g -> g | None -> Gen.create () in
  let rows = max 1 subjects in
  let cols = pow2_at_least (max 16 objects) 1 in
  let cells = rows * cols in
  {
    name;
    gens;
    sids = Policy.Subject_sids.create ();
    rows;
    cols;
    av = Array.make cells 0;
    g_global = Array.make cells (-1);
    g_obj = Array.make cells 0;
    max_obj = -1;
    flush_probe = None;
    hits = counter name "hits";
    misses = counter name "misses";
    invalidations = counter name "invalidations";
    insertions = counter name "insertions";
    flushes = counter name "flushes";
  }

let name t = t.name
let gens t = t.gens
let subject_sids t = t.sids
let subject_sid t subject = Policy.Subject_sids.sid_of t.sids subject
let subject_count t = Policy.Subject_sids.count t.sids
let set_flush_probe t probe = t.flush_probe <- probe

let incr c = if Obs.enabled () then Obs.Counter.incr c

let flush t =
  Array.fill t.g_global 0 (Array.length t.g_global) (-1);
  incr t.flushes

let probe_fault t =
  match t.flush_probe with Some fires when fires () -> flush t | _ -> ()

(* Grow to cover at least (rows, cols), re-laying out the cells under
   the new stride.  Growth is geometric and happens only on the
   insertion (cold) path. *)
let grow t ~rows ~cols =
  let rows = max rows t.rows in
  let cols = pow2_at_least cols t.cols in
  let av = Array.make (rows * cols) 0 in
  let g_global = Array.make (rows * cols) (-1) in
  let g_obj = Array.make (rows * cols) 0 in
  for r = 0 to t.rows - 1 do
    Array.blit t.av (r * t.cols) av (r * cols) t.cols;
    Array.blit t.g_global (r * t.cols) g_global (r * cols) t.cols;
    Array.blit t.g_obj (r * t.cols) g_obj (r * cols) t.cols
  done;
  t.rows <- rows;
  t.cols <- cols;
  t.av <- av;
  t.g_global <- g_global;
  t.g_obj <- g_obj

(* The hot lookup.  Returns the access vector, or -1 for a miss — an
   int, not an option, so a hit allocates nothing. *)
let find t ~subj ~obj =
  probe_fault t;
  let s = Sid.to_int subj in
  if s >= t.rows || obj < 0 || obj >= t.cols then begin
    incr t.misses;
    -1
  end
  else begin
    let i = (s * t.cols) + obj in
    if
      Array.unsafe_get t.g_global i = Gen.global t.gens
      && Array.unsafe_get t.g_obj i = Gen.of_object t.gens obj
    then begin
      incr t.hits;
      Array.unsafe_get t.av i
    end
    else begin
      (* A stamped cell whose counters moved was revoked: mark it
         empty now (so it is counted once), miss. *)
      if Array.unsafe_get t.g_global i >= 0 then begin
        Array.unsafe_set t.g_global i (-1);
        incr t.invalidations
      end;
      incr t.misses;
      -1
    end
  end

let find_opt t ~subj ~obj =
  match find t ~subj ~obj with -1 -> None | av -> Some av

let set t ~subj ~obj av =
  if obj >= 0 && obj < max_objects then begin
    let s = Sid.to_int subj in
    if s >= t.rows || obj >= t.cols then grow t ~rows:(2 * (s + 1)) ~cols:(obj + 1);
    let i = (s * t.cols) + obj in
    t.av.(i) <- av;
    t.g_global.(i) <- Gen.global t.gens;
    t.g_obj.(i) <- Gen.of_object t.gens obj;
    if obj > t.max_obj then t.max_obj <- obj;
    incr t.insertions
  end

(* Fresh-cell population.  A scan, not a counter: staleness is decided
   by the epoch stamps at read time, so any running count would drift.
   Bounded by (minted rows x highest uid cached) — status-command
   cost, not hot-path cost. *)
let size t =
  let live = ref 0 in
  let rows = min t.rows (Policy.Subject_sids.count t.sids) in
  for s = 0 to rows - 1 do
    for obj = 0 to min t.max_obj (t.cols - 1) do
      let i = (s * t.cols) + obj in
      if t.g_global.(i) = Gen.global t.gens && t.g_obj.(i) = Gen.of_object t.gens obj then
        Stdlib.incr live
    done
  done;
  !live

let counters t =
  let get c = Obs.Counter.get c in
  [
    ("hits", get t.hits);
    ("misses", get t.misses);
    ("invalidations", get t.invalidations);
    ("insertions", get t.insertions);
    ("flushes", get t.flushes);
  ]

let hit_ratio t =
  let h = float_of_int (Obs.Counter.get t.hits) in
  let m = float_of_int (Obs.Counter.get t.misses) in
  if h +. m = 0. then 0. else h /. (h +. m)

(* Eagerly recompile every minted (subject, object) pair, given the
   caller's view of the live objects.  [objects] yields (uid, label,
   acl, brackets); returns the number of cells filled.  Measurement
   and warm-up path — correctness never needs it, lazy refill under
   the stamps is already exact. *)
let rebuild t ~objects =
  let filled = ref 0 in
  Policy.Subject_sids.iter
    (fun sid subject ->
      objects (fun ~obj ~label ~acl ~brackets ->
          set t ~subj:sid ~obj (compute ~subject ~object_label:label ~acl ~brackets);
          Stdlib.incr filled))
    t.sids;
  !filled
