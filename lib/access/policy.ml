(* The security model the kernel enforces, as one composed check.

   A request passes only if all three independent mechanisms agree:

   - the mandatory (Mitre-model) lattice check: simple security (no
     read up) and the confinement *-property (no write down);
   - the discretionary check: the branch ACL grants the requested mode
     to the requesting principal;
   - the ring check: applied by the hardware against the SDW (see
     {!Multics_machine.Hardware}); callers combine it via
     [refusals_of_hardware].

   The composed verdict carries every reason that failed, because the
   audit trail (and the penetration experiments) need to distinguish
   "refused by the lattice" from "refused by an ACL". *)

open Multics_machine
module Obs = Multics_obs.Obs

(* [trusted] marks the small set of administrative subjects (the
   Initializer/daemons) exempt from the mandatory checks — the standard
   trusted-subject carve-out of the Mitre-style models.  They remain
   subject to the discretionary and ring checks. *)
type subject = {
  principal : Principal.t;
  clearance : Label.t;
  ring : Ring.t;
  trusted : bool;
  mutable sid_memo : int * int;
      (** [(registry stamp, memoized SID)] for the dense-SID memo (see
          {!Subject_sids}); stamp 0 = never interned.  One field holding
          an immutable pair, so the stamp and the SID it validates are
          written (and read) atomically — a subject record shared across
          domains can lose a memo race, never tear into an aliased SID.
          Internal to the SID layer. *)
}

let subject ?(trusted = false) ~principal ~clearance ~ring () =
  { principal; clearance; ring; trusted; sid_memo = (0, -1) }

type refusal =
  | Mandatory_read_up of { subject_label : Label.t; object_label : Label.t }
  | Mandatory_write_down of { subject_label : Label.t; object_label : Label.t }
  | Discretionary of { principal : Principal.t; granted : Mode.t; requested : Mode.t }
  | Ring_hardware of Hardware.denial

type verdict = Permit | Refuse of refusal list

let refusal_to_string = function
  | Mandatory_read_up { subject_label; object_label } ->
      Printf.sprintf "mandatory: read up (%s cannot read %s)"
        (Label.to_string subject_label) (Label.to_string object_label)
  | Mandatory_write_down { subject_label; object_label } ->
      Printf.sprintf "mandatory: write down (%s cannot write %s)"
        (Label.to_string subject_label) (Label.to_string object_label)
  | Discretionary { principal; granted; requested } ->
      Printf.sprintf "discretionary: %s holds %s, requested %s" (Principal.to_string principal)
        (Mode.to_string granted) (Mode.to_string requested)
  | Ring_hardware denial -> "ring: " ^ Hardware.denial_to_string denial

(* Simple security: observing (read or execute) an object requires the
   subject's clearance to dominate the object's label. *)
let mandatory_observe_refusals ~subject_label ~object_label =
  if Label.dominates subject_label object_label then []
  else [ Mandatory_read_up { subject_label; object_label } ]

(* *-property: modifying an object requires the object's label to
   dominate the subject's clearance, so information cannot be copied
   into a lower compartment through a writable object. *)
let mandatory_modify_refusals ~subject_label ~object_label =
  if Label.dominates object_label subject_label then []
  else [ Mandatory_write_down { subject_label; object_label } ]

let mandatory_refusals ~subject_label ~object_label ~(requested : Mode.t) =
  let observe =
    if requested.Mode.read || requested.Mode.execute then
      mandatory_observe_refusals ~subject_label ~object_label
    else []
  in
  let modify =
    if requested.Mode.write then mandatory_modify_refusals ~subject_label ~object_label
    else []
  in
  observe @ modify

let discretionary_refusals ~acl ~principal ~requested =
  let granted = Acl.mode_for acl principal in
  if Mode.subset requested granted then []
  else [ Discretionary { principal; granted; requested } ]

let refusals_of_hardware decision =
  match decision with Hardware.Granted _ -> [] | Hardware.Denied d -> [ Ring_hardware d ]

let verdict_of_refusals = function [] -> Permit | refusals -> Refuse refusals

(* Observability: one counter per refusal cause, so the audit story
   ("refused by the lattice" vs "refused by an ACL") is visible live. *)
let obs_checks = Obs.Local.counter "policy.checks"
let obs_refusals = Obs.Local.counter "policy.refusals"
let refusal_label = function
  | Mandatory_read_up _ -> "mandatory-read-up"
  | Mandatory_write_down _ -> "mandatory-write-down"
  | Discretionary _ -> "discretionary"
  | Ring_hardware _ -> "ring-hardware"

let observe verdict =
  if Obs.enabled () then begin
    Obs.Counter.incr (obs_checks ());
    match verdict with
    | Permit -> ()
    | Refuse refusals ->
        Obs.Counter.incr (obs_refusals ());
        List.iter
          (fun r ->
            Obs.Counter.incr
              (Obs.Registry.counter (Obs.Registry.global ()) ("policy.refusals." ^ refusal_label r)))
          refusals
  end;
  verdict

let check ~subject:s ~object_label ~acl ~requested =
  let mandatory =
    if s.trusted then []
    else mandatory_refusals ~subject_label:s.clearance ~object_label ~requested
  in
  observe
    (verdict_of_refusals
       (mandatory @ discretionary_refusals ~acl ~principal:s.principal ~requested))

let permitted = function Permit -> true | Refuse _ -> false

(* ----- Subject SIDs -----

   Everything a verdict depends on besides the object's attributes and
   the requested mode is the subject's identity: principal, clearance,
   trusted flag, ring (two processes of one principal can run at
   different session levels, so the principal alone is not enough).
   Interning that identity to a dense SID lets the compiled tables and
   the verdict cache key on one small int.  The hash skips the
   compartment set (equality splits the rare bucket shared by two
   levels), and equality takes the physical fast path first: a hot
   caller re-presents the same record reference for reference. *)

let subject_identity_hash (s : subject) =
  ((Hashtbl.hash s.principal * 31) + Label.level_rank (Label.level s.clearance) * 31)
  + (Ring.to_int s.ring * 2)
  + if s.trusted then 1 else 0

let subject_identity_equal (a : subject) b =
  a == b
  || a.trusted = b.trusted
     && Ring.equal a.ring b.ring
     && (a.principal == b.principal || a.principal = b.principal)
     && (a.clearance == b.clearance || Label.equal a.clearance b.clearance)

module Subject_sids = struct
  type nonrec t = { reg : int; map : subject Sid.Map.t }

  (* Registry ids are minted from 1 and never reused — atomically, so
     registries created on different domains stay distinct — and a
     subject record stamped by a dead (or foreign-domain) registry can
     only miss the memo check: it re-interns, it never aliases. *)
  let next_reg = Atomic.make 0

  let create () =
    {
      reg = Atomic.fetch_and_add next_reg 1 + 1;
      map = Sid.Map.create ~hash:subject_identity_hash ~equal:subject_identity_equal ();
    }

  let sid_of t (s : subject) =
    let reg, sid = s.sid_memo in
    if reg = t.reg then Sid.of_int sid
    else begin
      let sid = Sid.Map.intern t.map s in
      s.sid_memo <- (t.reg, Sid.to_int sid);
      sid
    end

  let count t = Sid.Map.count t.map
  let subject_of t sid = Sid.Map.value t.map sid
  let iter f t = Sid.Map.iter f t.map
end

let pp_verdict ppf = function
  | Permit -> Fmt.string ppf "permit"
  | Refuse refusals ->
      Fmt.pf ppf "refuse [%s]" (String.concat "; " (List.map refusal_to_string refusals))
