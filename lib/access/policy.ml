(* The security model the kernel enforces, as one composed check.

   A request passes only if all three independent mechanisms agree:

   - the mandatory (Mitre-model) lattice check: simple security (no
     read up) and the confinement *-property (no write down);
   - the discretionary check: the branch ACL grants the requested mode
     to the requesting principal;
   - the ring check: applied by the hardware against the SDW (see
     {!Multics_machine.Hardware}); callers combine it via
     [refusals_of_hardware].

   The composed verdict carries every reason that failed, because the
   audit trail (and the penetration experiments) need to distinguish
   "refused by the lattice" from "refused by an ACL". *)

open Multics_machine
module Obs = Multics_obs.Obs

(* [trusted] marks the small set of administrative subjects (the
   Initializer/daemons) exempt from the mandatory checks — the standard
   trusted-subject carve-out of the Mitre-style models.  They remain
   subject to the discretionary and ring checks. *)
type subject = {
  principal : Principal.t;
  clearance : Label.t;
  ring : Ring.t;
  trusted : bool;
}

let subject ?(trusted = false) ~principal ~clearance ~ring () =
  { principal; clearance; ring; trusted }

type refusal =
  | Mandatory_read_up of { subject_label : Label.t; object_label : Label.t }
  | Mandatory_write_down of { subject_label : Label.t; object_label : Label.t }
  | Discretionary of { principal : Principal.t; granted : Mode.t; requested : Mode.t }
  | Ring_hardware of Hardware.denial

type verdict = Permit | Refuse of refusal list

let refusal_to_string = function
  | Mandatory_read_up { subject_label; object_label } ->
      Printf.sprintf "mandatory: read up (%s cannot read %s)"
        (Label.to_string subject_label) (Label.to_string object_label)
  | Mandatory_write_down { subject_label; object_label } ->
      Printf.sprintf "mandatory: write down (%s cannot write %s)"
        (Label.to_string subject_label) (Label.to_string object_label)
  | Discretionary { principal; granted; requested } ->
      Printf.sprintf "discretionary: %s holds %s, requested %s" (Principal.to_string principal)
        (Mode.to_string granted) (Mode.to_string requested)
  | Ring_hardware denial -> "ring: " ^ Hardware.denial_to_string denial

(* Simple security: observing (read or execute) an object requires the
   subject's clearance to dominate the object's label. *)
let mandatory_observe_refusals ~subject_label ~object_label =
  if Label.dominates subject_label object_label then []
  else [ Mandatory_read_up { subject_label; object_label } ]

(* *-property: modifying an object requires the object's label to
   dominate the subject's clearance, so information cannot be copied
   into a lower compartment through a writable object. *)
let mandatory_modify_refusals ~subject_label ~object_label =
  if Label.dominates object_label subject_label then []
  else [ Mandatory_write_down { subject_label; object_label } ]

let mandatory_refusals ~subject_label ~object_label ~(requested : Mode.t) =
  let observe =
    if requested.Mode.read || requested.Mode.execute then
      mandatory_observe_refusals ~subject_label ~object_label
    else []
  in
  let modify =
    if requested.Mode.write then mandatory_modify_refusals ~subject_label ~object_label
    else []
  in
  observe @ modify

let discretionary_refusals ~acl ~principal ~requested =
  let granted = Acl.mode_for acl principal in
  if Mode.subset requested granted then []
  else [ Discretionary { principal; granted; requested } ]

let refusals_of_hardware decision =
  match decision with Hardware.Granted _ -> [] | Hardware.Denied d -> [ Ring_hardware d ]

let verdict_of_refusals = function [] -> Permit | refusals -> Refuse refusals

(* Observability: one counter per refusal cause, so the audit story
   ("refused by the lattice" vs "refused by an ACL") is visible live. *)
let obs_checks = Obs.Registry.counter Obs.Registry.global "policy.checks"
let obs_refusals = Obs.Registry.counter Obs.Registry.global "policy.refusals"

let refusal_label = function
  | Mandatory_read_up _ -> "mandatory-read-up"
  | Mandatory_write_down _ -> "mandatory-write-down"
  | Discretionary _ -> "discretionary"
  | Ring_hardware _ -> "ring-hardware"

let observe verdict =
  if Obs.enabled () then begin
    Obs.Counter.incr obs_checks;
    match verdict with
    | Permit -> ()
    | Refuse refusals ->
        Obs.Counter.incr obs_refusals;
        List.iter
          (fun r ->
            Obs.Counter.incr
              (Obs.Registry.counter Obs.Registry.global ("policy.refusals." ^ refusal_label r)))
          refusals
  end;
  verdict

let check ~subject:s ~object_label ~acl ~requested =
  let mandatory =
    if s.trusted then []
    else mandatory_refusals ~subject_label:s.clearance ~object_label ~requested
  in
  observe
    (verdict_of_refusals
       (mandatory @ discretionary_refusals ~acl ~principal:s.principal ~requested))

let permitted = function Permit -> true | Refuse _ -> false

(* The access-decision cache (AVC).  [check] is the recompute path; the
   cache replays its verdicts on the mediation hot path, keyed by
   everything the verdict depends on besides the object's own
   attributes: the full subject identity (principal, clearance, trusted
   flag, ring — two processes of one principal can run at different
   session levels, so the principal alone is not enough) plus the
   requested mode and the object id.  The object's label and ACL are
   covered by the per-object generation stamp instead: any edit bumps
   the generation and the entry dies (see {!Multics_cache.Avc}). *)
module Cache = struct
  type key = {
    principal : Principal.t;
    clearance : Label.t;
    trusted : bool;
    ring : int;
    requested : Mode.t;
    obj : int;
  }

  type nonrec t = (key, verdict) Multics_cache.Avc.t

  (* A few integer mixes over the discriminating fields; collisions
     (e.g. two principals probing the same object at the same ring)
     share a bucket and are split by structural equality.  Hashing the
     principal strings here would cost more than many of the verdicts
     the cache serves. *)
  let key_hash k =
    let mode_bits =
      (if k.requested.Mode.read then 1 else 0)
      lor (if k.requested.Mode.execute then 2 else 0)
      lor (if k.requested.Mode.write then 4 else 0)
      lor if k.trusted then 8 else 0
    in
    (((k.obj * 31) + k.ring) * 31) + (mode_bits * 31)
    + Label.level_rank (Label.level k.clearance)

  (* Integer fields first (they discriminate almost every miss), then
     the structured fields with a physical-equality fast path: a hot
     caller re-presents the same subject record reference for
     reference, so the principal and clearance comparisons are almost
     always pointer checks, not string walks. *)
  let key_equal a b =
    a.obj = b.obj && a.ring = b.ring && a.trusted = b.trusted
    && Mode.equal a.requested b.requested
    && (a.principal == b.principal || a.principal = b.principal)
    && (a.clearance == b.clearance || a.clearance = b.clearance)

  let create ?(capacity = 1024) ?gens () =
    Multics_cache.Avc.create ~capacity ?gens ~hash:key_hash ~equal:key_equal ~name:"policy" ()
end

let check_cached ~cache ~obj ~subject:s ~object_label ~acl ~requested =
  let key =
    {
      Cache.principal = s.principal;
      clearance = s.clearance;
      trusted = s.trusted;
      ring = Ring.to_int s.ring;
      requested;
      obj;
    }
  in
  match Multics_cache.Avc.find cache key with
  | Some verdict ->
      (* Replay the policy counters so caching is observationally
         transparent: audit totals are identical whether a verdict was
         recomputed or served from the cache. *)
      observe verdict
  | None ->
      let verdict = check ~subject:s ~object_label ~acl ~requested in
      Multics_cache.Avc.add cache ~obj key verdict;
      verdict

let pp_verdict ppf = function
  | Permit -> Fmt.string ppf "permit"
  | Refuse refusals ->
      Fmt.pf ppf "refuse [%s]" (String.concat "; " (List.map refusal_to_string refusals))
