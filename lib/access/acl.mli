(** Discretionary access control lists over principal patterns.

    Evaluation follows the Multics rule: the most specific matching
    entry decides (person component most significant); no match means
    no access. *)

open Multics_machine

type t

val empty : t

val add : t -> pattern:Principal.pattern -> mode:Mode.t -> t
(** Replaces any existing entry with the same pattern. *)

val add_string : t -> pattern:string -> mode:string -> t
(** Convenience: [add_string acl ~pattern:"Schroeder.*.*" ~mode:"rw"]. *)

val remove : t -> pattern:Principal.pattern -> t

val of_entries : (Principal.pattern * Mode.t) list -> t
val of_strings : (string * string) list -> t

val entries : t -> (Principal.pattern * Mode.t) list
(** Most specific first — the evaluation order. *)

val mode_for : t -> Principal.t -> Mode.t
(** The mode granted by the most specific matching entry, or
    [Mode.none]. *)

val permits : t -> Principal.t -> requested:Mode.t -> bool

val generation : unit -> int
(** Module-level mutation generation: bumped by every entry point that
    produces a modified ACL ([add], [add_string], [remove],
    [of_entries], [of_strings]).  Cached access decisions derived from
    ACL contents compare generations to detect edits they would
    otherwise miss. *)

val on_change : (unit -> unit) -> unit
(** Register a callback fired on every ACL mutation (same coverage as
    {!generation}).  Callbacks cannot be unregistered; intended for
    process-lifetime subscribers such as the access-decision cache. *)

val pp : Format.formatter -> t -> unit
