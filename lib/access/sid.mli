(** Dense security identifiers: small ints interned from structured
    attributes (subject identities, page ids), so the mediation hot
    path indexes preallocated arrays instead of hashing structured
    keys.  Object uids and segment numbers are already dense SID
    spaces and are admitted directly via {!of_int}. *)

type t = private int

val of_int : int -> t
(** Admit an id from a space that is already dense and never reused
    (file-system uids, segment numbers).  Raises [Invalid_argument] on
    negatives. *)

val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

(** A registry from structured values to dense SIDs, minted in
    first-arrival order (0, 1, 2, ...) and never reused or deleted: a
    reusable SID would let a stale table row describe a different
    principal.  Interning is the cold path; everything downstream of
    the SID is int-indexed. *)
module Map : sig
  type sid := t
  type 'a t

  val create :
    ?initial:int -> ?hash:('a -> int) -> ?equal:('a -> 'a -> bool) -> unit -> 'a t
  (** [hash] need not be injective — collisions split by [equal], so a
      lossy hash costs probes, never identity confusion. *)

  val intern : 'a t -> 'a -> sid
  (** The value's SID, minting a fresh one on first sight.  Stable:
      interning an equal value always returns the same SID. *)

  val find : 'a t -> 'a -> sid option
  (** As {!intern} but without minting. *)

  val value : 'a t -> sid -> 'a
  (** The canonical (first-interned) value.  Raises [Invalid_argument]
      on a sid this registry never minted. *)

  val count : 'a t -> int
  val iter : (sid -> 'a -> unit) -> 'a t -> unit
end
