(* Dense security identifiers (SIDs).

   The mediation hot path wants to index preallocated arrays, not hash
   structured keys: a subject identity (principal, clearance, ring,
   trusted) or a page id is interned ONCE to a small dense int, and
   every later decision is an array load indexed by that int.  This is
   the SELinux sid_map arrangement applied to the paper's kernel: the
   structured attributes stay the source of truth, the SID is only a
   compressed name for them, minted in arrival order and never reused.

   Two SID spaces need no interning at all, because the kernel already
   names them with small dense ints: file-system object uids (the Uid
   generator is the object-SID allocator) and segment numbers (the
   hardware's own per-process dense space).  [of_int] admits those
   spaces; [Map] interns everything else. *)

type t = int

let of_int i = if i < 0 then invalid_arg "Sid.of_int: negative sid" else i
let to_int t = t
let equal = Int.equal
let compare = Int.compare
let pp ppf t = Fmt.pf ppf "sid:%d" t

(* A registry from structured values to dense SIDs.  Interning is the
   cold path (a hashed lookup); everything downstream of the returned
   SID is int-indexed.  SIDs are minted 0, 1, 2, ... in first-arrival
   order and are stable for the registry's lifetime — there is no
   delete, because a SID that could be reused would let a stale table
   row describe a different principal. *)
module Map = struct
  type 'a t = {
    hash : 'a -> int;
    equal : 'a -> 'a -> bool;
    (* Buckets keyed by the caller's hash; collisions split by the
       caller's equality, so a lossy hash costs probes, never identity
       confusion. *)
    index : (int, ('a * int) list) Hashtbl.t;
    mutable values : 'a option array;  (** sid -> canonical value *)
    mutable count : int;
  }

  let create ?(initial = 64) ?(hash = Hashtbl.hash) ?(equal = ( = )) () =
    {
      hash;
      equal;
      index = Hashtbl.create (max 16 initial);
      values = Array.make (max 16 initial) None;
      count = 0;
    }

  let count t = t.count

  let ensure t needed =
    if needed > Array.length t.values then begin
      let grown = Array.make (max needed (2 * Array.length t.values)) None in
      Array.blit t.values 0 grown 0 t.count;
      t.values <- grown
    end

  let find t v =
    let bucket = Option.value (Hashtbl.find_opt t.index (t.hash v)) ~default:[] in
    Option.map snd (List.find_opt (fun (k, _) -> t.equal k v) bucket)

  let intern t v =
    let h = t.hash v in
    let bucket = Option.value (Hashtbl.find_opt t.index h) ~default:[] in
    match List.find_opt (fun (k, _) -> t.equal k v) bucket with
    | Some (_, sid) -> sid
    | None ->
        let sid = t.count in
        ensure t (sid + 1);
        t.values.(sid) <- Some v;
        t.count <- sid + 1;
        Hashtbl.replace t.index h ((v, sid) :: bucket);
        sid

  let value t sid =
    if sid < 0 || sid >= t.count then invalid_arg "Sid.Map.value: unknown sid"
    else
      match t.values.(sid) with
      | Some v -> v
      | None -> invalid_arg "Sid.Map.value: unknown sid"

  let iter f t =
    for sid = 0 to t.count - 1 do
      match t.values.(sid) with Some v -> f sid v | None -> ()
    done
end
