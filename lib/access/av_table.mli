(** The compiled access-vector table: Policy + ring brackets compiled
    per (subject SID, object uid) into a preallocated 2-D int array of
    access-vector bits.  A hit is an array load — no allocation, no
    hashing, no structured comparison.

    Revocation correctness is inherited from the
    {!Multics_cache.Avc.Gen} epoch counters: every cell carries the
    global and per-object stamps current when it was compiled, and any
    ACL edit, label change, bracket change, delete, rename or salvage
    bumps a counter, so a revoked cell reads as empty on the next
    reference and is refilled lazily (or eagerly via {!rebuild}).

    Soundness of the encoding: permission is conjunctive per mode bit,
    so six bits (r/e/w policy grants plus bracket-read/bracket-write)
    decide every (subject, object, mode) question exactly.  Refusal
    details are not compiled; uncovered requests fall back to the
    structured recompute path, which keeps refusal lists and audit
    counters byte-identical to the uncached kernel. *)

open Multics_machine

(** {1 Access-vector bits} *)

val bit_read : int
val bit_execute : int
val bit_write : int
val bit_bracket_read : int
val bit_bracket_write : int

val required : Mode.t -> int
(** The bits a request must cover: observe modes need the read
    bracket, write needs the write bracket. *)

val covers : av:int -> need:int -> bool

val compute :
  subject:Policy.subject -> object_label:Label.t -> acl:Acl.t -> brackets:Brackets.t -> int
(** Compile one cell: the conjunctive form of [Policy.check] (with the
    trusted-subject carve-out) and the bracket rule.  Held pointwise
    equal to the structured path by the E19 oracle and the unit
    tests. *)

val pp_av : Format.formatter -> int -> unit

(** {1 The table} *)

type t

val create :
  ?subjects:int -> ?objects:int -> ?gens:Multics_cache.Avc.Gen.t -> name:string -> unit -> t
(** Preallocates [subjects] rows by [objects] columns (both grown
    geometrically on demand; columns are capped at an internal bound
    past which cells simply recompute).  Counters are registered under
    ["cache.<name>.*"] with the same field names as {!Multics_cache.Avc},
    so status surfaces need not care which mechanism serves them. *)

val name : t -> string
val gens : t -> Multics_cache.Avc.Gen.t

val subject_sid : t -> Policy.subject -> Sid.t
(** Intern (or recall, via the subject's memo stamp — two int
    compares) the subject's row. *)

val subject_sids : t -> Policy.Subject_sids.t
val subject_count : t -> int

val find : t -> subj:Sid.t -> obj:int -> int
(** The hot lookup: the cell's access vector, or [-1] for a miss
    (empty, stale, or out of range).  Returns an int, not an option,
    so a hit allocates nothing.  Stale cells are marked empty and
    counted as an invalidation plus a miss, as in {!Multics_cache.Avc}. *)

val find_opt : t -> subj:Sid.t -> obj:int -> int option
(** Allocating convenience for tests. *)

val set : t -> subj:Sid.t -> obj:int -> int -> unit
(** Fill a cell, stamped with the current generations. *)

val flush : t -> unit
(** Empty every cell outright (storage, not just staleness). *)

val set_flush_probe : t -> (unit -> bool) option -> unit
(** The fault-injection probe ([cache.flush] storms), consulted on
    every lookup; when it fires the table is flushed first. *)

val size : t -> int
(** Fresh-cell population (a bounded scan, for status surfaces). *)

val counters : t -> (string * int) list
val hit_ratio : t -> float

val rebuild :
  t ->
  objects:
    ((obj:int -> label:Label.t -> acl:Acl.t -> brackets:Brackets.t -> unit) -> unit) ->
  int
(** Eagerly recompile every minted (subject, object) pair: [objects]
    is an iterator over the live objects' attributes.  Returns the
    number of cells filled.  Measurement and warm-up only — lazy
    refill under the stamps is already exact. *)
