(** The composed security model: mandatory lattice + discretionary ACL
    + ring hardware, with verdicts that carry every failing reason. *)

open Multics_machine

type subject = {
  principal : Principal.t;
  clearance : Label.t;
  ring : Ring.t;
  trusted : bool;  (** exempt from the mandatory checks (administrative
                       daemons); still subject to ACLs and rings *)
  mutable sid_reg : int;
      (** dense-SID memo stamp, internal to {!Subject_sids}: which
          registry [sid] is valid under (0 = none).  Do not touch. *)
  mutable sid : int;  (** the memoized dense SID under [sid_reg] *)
}

val subject :
  ?trusted:bool ->
  principal:Principal.t ->
  clearance:Label.t ->
  ring:Ring.t ->
  unit ->
  subject
(** [trusted] defaults to false. *)

type refusal =
  | Mandatory_read_up of { subject_label : Label.t; object_label : Label.t }
  | Mandatory_write_down of { subject_label : Label.t; object_label : Label.t }
  | Discretionary of { principal : Principal.t; granted : Mode.t; requested : Mode.t }
  | Ring_hardware of Hardware.denial

type verdict = Permit | Refuse of refusal list

val refusal_to_string : refusal -> string

val mandatory_refusals :
  subject_label:Label.t -> object_label:Label.t -> requested:Mode.t -> refusal list
(** Simple security for read/execute, *-property for write. *)

val discretionary_refusals :
  acl:Acl.t -> principal:Principal.t -> requested:Mode.t -> refusal list

val refusals_of_hardware : Hardware.decision -> refusal list

val verdict_of_refusals : refusal list -> verdict

val check :
  subject:subject -> object_label:Label.t -> acl:Acl.t -> requested:Mode.t -> verdict
(** Mandatory and discretionary checks composed; the ring check is
    applied by the hardware layer on each reference and combined via
    [refusals_of_hardware]. *)

val permitted : verdict -> bool

val observe : verdict -> verdict
(** Bump the policy counters ([policy.checks], [policy.refusals.*]) as
    if the verdict had just been computed, and return it.  The cached
    paths (the compiled tables, {!check_cached}) replay counters
    through this so audit totals are independent of caching. *)

(** Interning of subject identities (principal, clearance, trusted,
    ring — two processes of one principal can run at different session
    levels, so the principal alone is not enough) to dense {!Sid.t}s.
    The subject record memoizes its SID under a registry stamp, so a
    hot caller re-presenting the same record pays two int compares and
    no hashing; registry ids are never reused, so a stale stamp can
    only re-intern, never alias. *)
module Subject_sids : sig
  type t

  val create : unit -> t
  val sid_of : t -> subject -> Sid.t
  val count : t -> int

  val subject_of : t -> Sid.t -> subject
  (** The canonical (first-interned) record.  Raises
      [Invalid_argument] on a SID this registry never minted. *)

  val iter : (Sid.t -> subject -> unit) -> t -> unit
end

(** The structured-key access-decision cache: verdicts of {!check}
    keyed by (subject SID, requested-mode bits, object id) — three
    ints, so the hit path hashes nothing and no two distinct keys can
    compare equal.  Object attributes (label, ACL) are covered by
    per-object generation stamps — see {!Multics_cache.Avc} — so an
    ACL edit or label change invalidates immediately.

    @deprecated as the mediation hot path: the hierarchy serves
    references from the compiled {!Av_table} flat tables.  This cache
    and {!check_cached} remain for one release as the structured-key
    shim (and as the PR-3 baseline the benches compare against). *)
module Cache : sig
  type key = { subj : Sid.t; mode : int; obj : int }

  val mode_bits : Mode.t -> int

  type t = {
    avc : (key, verdict) Multics_cache.Avc.t;
    sids : Subject_sids.t;  (** the shim's own interning registry *)
  }

  val create : ?capacity:int -> ?gens:Multics_cache.Avc.Gen.t -> unit -> t
  (** Registered under obs counters ["cache.policy.avc.*"]. *)

  val stats : t -> (string * int) list
end

val check_cached :
  cache:Cache.t ->
  obj:int ->
  subject:subject ->
  object_label:Label.t ->
  acl:Acl.t ->
  requested:Mode.t ->
  verdict
(** Exactly {!check}, memoized in [cache] under the stamp discipline.
    On a hit the policy counters are replayed so audit totals are
    independent of caching; cache-parity ([check_cached] ≡ [check] at
    every step, including across revocation and salvage) is enforced by
    the property tests.

    @deprecated Structured-key shim: new callers should take the
    compiled-table path (see {!Av_table} and the hierarchy's
    [check_access]). *)

val pp_verdict : Format.formatter -> verdict -> unit
