(** The composed security model: mandatory lattice + discretionary ACL
    + ring hardware, with verdicts that carry every failing reason. *)

open Multics_machine

type subject = {
  principal : Principal.t;
  clearance : Label.t;
  ring : Ring.t;
  trusted : bool;  (** exempt from the mandatory checks (administrative
                       daemons); still subject to ACLs and rings *)
  mutable sid_memo : int * int;
      (** dense-SID memo, internal to {!Subject_sids}: (registry stamp,
          memoized SID), stamp 0 = none.  One field holding an immutable
          pair so the stamp and SID are read/written atomically even
          when a record is shared across domains.  Do not touch. *)
}

val subject :
  ?trusted:bool ->
  principal:Principal.t ->
  clearance:Label.t ->
  ring:Ring.t ->
  unit ->
  subject
(** [trusted] defaults to false. *)

type refusal =
  | Mandatory_read_up of { subject_label : Label.t; object_label : Label.t }
  | Mandatory_write_down of { subject_label : Label.t; object_label : Label.t }
  | Discretionary of { principal : Principal.t; granted : Mode.t; requested : Mode.t }
  | Ring_hardware of Hardware.denial

type verdict = Permit | Refuse of refusal list

val refusal_to_string : refusal -> string

val mandatory_refusals :
  subject_label:Label.t -> object_label:Label.t -> requested:Mode.t -> refusal list
(** Simple security for read/execute, *-property for write. *)

val discretionary_refusals :
  acl:Acl.t -> principal:Principal.t -> requested:Mode.t -> refusal list

val refusals_of_hardware : Hardware.decision -> refusal list

val verdict_of_refusals : refusal list -> verdict

val check :
  subject:subject -> object_label:Label.t -> acl:Acl.t -> requested:Mode.t -> verdict
(** Mandatory and discretionary checks composed; the ring check is
    applied by the hardware layer on each reference and combined via
    [refusals_of_hardware]. *)

val permitted : verdict -> bool

val observe : verdict -> verdict
(** Bump the policy counters ([policy.checks], [policy.refusals.*]) as
    if the verdict had just been computed, and return it.  The cached
    paths (the compiled {!Av_table} tables) replay counters through
    this so audit totals are independent of caching. *)

(** Interning of subject identities (principal, clearance, trusted,
    ring — two processes of one principal can run at different session
    levels, so the principal alone is not enough) to dense {!Sid.t}s.
    The subject record memoizes its SID under a registry stamp, so a
    hot caller re-presenting the same record pays two int compares and
    no hashing; registry ids are never reused, so a stale stamp can
    only re-intern, never alias. *)
module Subject_sids : sig
  type t

  val create : unit -> t
  val sid_of : t -> subject -> Sid.t
  val count : t -> int

  val subject_of : t -> Sid.t -> subject
  (** The canonical (first-interned) record.  Raises
      [Invalid_argument] on a SID this registry never minted. *)

  val iter : (Sid.t -> subject -> unit) -> t -> unit
end

val pp_verdict : Format.formatter -> verdict -> unit
