(** The composed security model: mandatory lattice + discretionary ACL
    + ring hardware, with verdicts that carry every failing reason. *)

open Multics_machine

type subject = {
  principal : Principal.t;
  clearance : Label.t;
  ring : Ring.t;
  trusted : bool;  (** exempt from the mandatory checks (administrative
                       daemons); still subject to ACLs and rings *)
}

val subject :
  ?trusted:bool ->
  principal:Principal.t ->
  clearance:Label.t ->
  ring:Ring.t ->
  unit ->
  subject
(** [trusted] defaults to false. *)

type refusal =
  | Mandatory_read_up of { subject_label : Label.t; object_label : Label.t }
  | Mandatory_write_down of { subject_label : Label.t; object_label : Label.t }
  | Discretionary of { principal : Principal.t; granted : Mode.t; requested : Mode.t }
  | Ring_hardware of Hardware.denial

type verdict = Permit | Refuse of refusal list

val refusal_to_string : refusal -> string

val mandatory_refusals :
  subject_label:Label.t -> object_label:Label.t -> requested:Mode.t -> refusal list
(** Simple security for read/execute, *-property for write. *)

val discretionary_refusals :
  acl:Acl.t -> principal:Principal.t -> requested:Mode.t -> refusal list

val refusals_of_hardware : Hardware.decision -> refusal list

val verdict_of_refusals : refusal list -> verdict

val check :
  subject:subject -> object_label:Label.t -> acl:Acl.t -> requested:Mode.t -> verdict
(** Mandatory and discretionary checks composed; the ring check is
    applied by the hardware layer on each reference and combined via
    [refusals_of_hardware]. *)

val permitted : verdict -> bool

(** The access-decision cache: verdicts of {!check} keyed by subject
    identity (principal, clearance, trusted, ring), requested mode and
    object id.  Object attributes (label, ACL) are covered by per-object
    generation stamps — see {!Multics_cache.Avc} — so an ACL edit or
    label change invalidates immediately. *)
module Cache : sig
  type key = {
    principal : Principal.t;
    clearance : Label.t;
    trusted : bool;
    ring : int;
    requested : Mode.t;
    obj : int;
  }

  type t = (key, verdict) Multics_cache.Avc.t

  val create : ?capacity:int -> ?gens:Multics_cache.Avc.Gen.t -> unit -> t
  (** Registered under obs counters ["cache.policy.*"]. *)
end

val check_cached :
  cache:Cache.t ->
  obj:int ->
  subject:subject ->
  object_label:Label.t ->
  acl:Acl.t ->
  requested:Mode.t ->
  verdict
(** Exactly {!check}, memoized in [cache] under the stamp discipline.
    On a hit the policy counters are replayed so audit totals are
    independent of caching; cache-parity ([check_cached] ≡ [check] at
    every step, including across revocation and salvage) is enforced by
    the property tests. *)

val pp_verdict : Format.formatter -> verdict -> unit
