(* Deterministic domain-pool runner.  See par.mli for the contract.

   Scheduling is a chunked work queue: workers claim half-open index
   ranges from a mutex-protected cursor, so task-to-worker assignment
   is schedule-dependent — but nothing observable depends on it.
   Results land in a preallocated array slot per task, each worker
   task records into its own domain-local Obs registry (reset before
   every task), and after the join the caller absorbs the per-task
   snapshots in task order.  Obs instrument totals are additive, so
   the merged registry matches a sequential run. *)

module Obs = Multics_obs.Obs

let clamp lo hi v = if v < lo then lo else if v > hi then hi else v

let default_jobs () =
  match Sys.getenv_opt "MULTICS_JOBS" with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> clamp 1 64 n
      | None -> 1)

(* A worker task calling back into Par (a fleet sweep inside a
   per-seed run) must not spawn a second layer of domains. *)
let in_worker_key = Domain.DLS.new_key (fun () -> false)

module Stats = struct
  type t = {
    pool_size : int;
    runs : int;
    tasks : int;
    per_worker : (int * int) list;
  }

  let mutex = Mutex.create ()
  let last_pool = ref 1
  let total_runs = ref 0
  let total_tasks = ref 0
  let worker_tasks : (int, int) Hashtbl.t = Hashtbl.create 8

  let note ~pool ~counts =
    Mutex.lock mutex;
    last_pool := pool;
    incr total_runs;
    Array.iteri
      (fun slot n ->
        if n > 0 then begin
          total_tasks := !total_tasks + n;
          let prev = Option.value ~default:0 (Hashtbl.find_opt worker_tasks slot) in
          Hashtbl.replace worker_tasks slot (prev + n)
        end)
      counts;
    Mutex.unlock mutex

  let snapshot () =
    Mutex.lock mutex;
    let per_worker =
      Hashtbl.fold (fun slot n acc -> (slot, n) :: acc) worker_tasks []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    let t =
      {
        pool_size = !last_pool;
        runs = !total_runs;
        tasks = !total_tasks;
        per_worker;
      }
    in
    Mutex.unlock mutex;
    t

  let reset () =
    Mutex.lock mutex;
    last_pool := 1;
    total_runs := 0;
    total_tasks := 0;
    Hashtbl.reset worker_tasks;
    Mutex.unlock mutex
end

let map_inline f xs =
  let results = List.map f xs in
  Stats.note ~pool:1 ~counts:[| List.length xs |];
  results

let map_parallel ~pool f tasks =
  let n = Array.length tasks in
  let results = Array.make n None in
  let errors = Array.make n None in
  let snaps = Array.make n None in
  let counts = Array.make pool 0 in
  (* Chunks amortise queue locking but stay small enough to balance
     uneven per-seed costs across the pool. *)
  let chunk = max 1 (n / (pool * 8)) in
  let queue_mutex = Mutex.create () in
  let cursor = ref 0 in
  let claim () =
    Mutex.lock queue_mutex;
    let lo = !cursor in
    if lo < n then cursor := min n (lo + chunk);
    Mutex.unlock queue_mutex;
    if lo >= n then None else Some (lo, min n (lo + chunk))
  in
  let caller_enabled = Obs.enabled () in
  let worker slot () =
    Domain.DLS.set in_worker_key true;
    Obs.set_enabled caller_enabled;
    let registry = Obs.Registry.global () in
    let ran = ref 0 in
    let rec drain () =
      match claim () with
      | None -> ()
      | Some (lo, hi) ->
          for i = lo to hi - 1 do
            Obs.Registry.reset registry;
            (match f tasks.(i) with
            | r -> results.(i) <- Some r
            | exception e -> errors.(i) <- Some e);
            snaps.(i) <- Some (Obs.Snapshot.capture ~registry ());
            incr ran
          done;
          drain ()
    in
    drain ();
    counts.(slot) <- !ran
  in
  let domains = Array.init pool (fun slot -> Domain.spawn (worker slot)) in
  Array.iter Domain.join domains;
  Stats.note ~pool ~counts;
  (* Reduce in task order: absorb each task's recordings up to (and
     excluding) the first failure, then re-raise deterministically. *)
  let caller_registry = Obs.Registry.global () in
  let out = ref [] in
  (try
     for i = 0 to n - 1 do
       match errors.(i) with
       | Some e -> raise e
       | None ->
           (match snaps.(i) with
           | Some s -> Obs.Snapshot.absorb ~into:caller_registry s
           | None -> ());
           out := Option.get results.(i) :: !out
     done
   with e ->
     (* Keep recordings already absorbed, as a sequential run would. *)
     raise e);
  List.rev !out

let map ?jobs f xs =
  let jobs =
    match jobs with Some j -> clamp 1 64 j | None -> default_jobs ()
  in
  let n = List.length xs in
  if n = 0 then []
  else if jobs <= 1 || n <= 1 || Domain.DLS.get in_worker_key then map_inline f xs
  else map_parallel ~pool:(min jobs n) f (Array.of_list xs)

let run_seeds ?jobs n f = map ?jobs f (List.init n Fun.id)
