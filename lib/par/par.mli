(** Deterministic domain-parallel runner for the experiment harness.

    The 100-seed parity oracles and fleet sweeps are embarrassingly
    parallel: every per-seed run boots its own kernel from an
    independent labeled-PRNG stream.  [Par.map] fans such tasks out
    over a pool of OCaml 5 domains (a chunked work queue), then reduces
    results — and each task's {!Obs} recordings — {e in task order}, so
    tables, digests and verdict lines are byte-identical regardless of
    pool size.

    Determinism contract:
    - results are returned in input order, whatever the schedule;
    - with a pool size of 1 (the default), [map] is a plain inline
      [List.map] — byte-identical to the pre-parallel harness by
      construction;
    - each worker task records into its own domain-local Obs registry;
      after the join the per-task snapshots are absorbed into the
      caller's registry in task order, so additive instrument totals
      match a sequential run exactly;
    - if tasks raise, the exception of the lowest-indexed failing task
      is re-raised (recordings of the tasks before it are kept).

    Pool size comes from [?jobs], defaulting to the [MULTICS_JOBS]
    environment variable (default 1, clamped to 1..64).  Nested [map]
    calls from inside a worker task degrade to inline execution —
    domains are not recursively multiplied. *)

val default_jobs : unit -> int
(** Pool size from [MULTICS_JOBS]; 1 when unset or unparsable, clamped
    to 1..64. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] applies [f] to every element, in parallel when the
    effective pool size exceeds 1, returning results in input order. *)

val run_seeds : ?jobs:int -> int -> (int -> 'a) -> 'a list
(** [run_seeds n f] is [map f [0; ..; n-1]] — the common shape of a
    100-seed oracle loop. *)

(** Cumulative harness statistics (for the shell's [jobs status]). *)
module Stats : sig
  type t = {
    pool_size : int;  (** pool size of the most recent parallel run (1 = inline) *)
    runs : int;  (** [map]/[run_seeds] invocations so far *)
    tasks : int;  (** total tasks executed *)
    per_worker : (int * int) list;
        (** (worker slot, cumulative tasks run on it); inline execution
            counts toward slot 0 *)
  }

  val snapshot : unit -> t
  val reset : unit -> unit
end
