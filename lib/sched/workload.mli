(** Deterministic multi-user timesharing workload driver.

    Builds a full stack — simulator, three-level memory, page control
    in the parallel discipline, the traffic controller, and (for gate
    traffic) a booted kernel — and drives it with the classic Multics
    population: interactive sessions that think at a terminal and then
    demand their working set, absentee (batch) jobs that grind without
    thinking, and daemons that tick in the background.  All randomness
    comes from {!Multics_util.Prng.create_labeled} streams keyed by
    [(seed, role.index)], so a session's demands are a function of the
    spec alone, never of the schedule — which is what makes the
    schedule-invariance oracle (E17) meaningful.

    Per-interaction response times are recorded through [lib/obs]
    (histogram ["sched.response.cycles"]) and returned as a summary. *)

module Sim = Multics_proc.Sim

(** Which policy to build for a run (fresh state per run, so a [spec]
    stays pure data). *)
type policy_choice = Use_mlf | Use_fifo | Use_external

val policy_choice_name : policy_choice -> string

val policy_choice_of_string : string -> policy_choice option
(** ["mlf"], ["fifo"], ["external"]. *)

type spec = {
  seed : int;
  users : int;  (** interactive sessions *)
  interactions : int;  (** per session *)
  think : int;  (** mean think time, cycles; jittered per session *)
  service : int;  (** compute per working-set pass *)
  working_set : int;  (** pages per session *)
  passes : int;  (** working-set passes per interaction *)
  batch : int;  (** absentee jobs *)
  batch_chunks : int;  (** compute chunks per batch job *)
  batch_chunk : int;  (** cycles per chunk *)
  daemons : int;  (** background daemons ticking until the load drains *)
  gate_calls : bool;  (** make audited kernel gate calls per interaction *)
  vps : int;  (** shared virtual processors (page control adds 2 dedicated) *)
  core : int;  (** core frames; 0 = auto-size to fit every working set *)
  bulk : int;  (** bulk-store blocks; 0 = auto *)
  disk : int;  (** disk blocks; 0 = auto *)
  cap : int;  (** eligibility cap; 0 = unlimited *)
  policy : policy_choice;
  fault_spec : string;  (** fault plan spec, [""] = none (e.g. ["sched.preempt_storm=every:3"]) *)
  cost : Multics_machine.Cost.t;
  cpus : int;
      (** simulated CPUs (1..{!Multics_smp.Smp.max_cpus}); above 1 a
          multiprocessor plant is built — per-CPU associative
          memories, connect coherence, global-lock contention.
          Timing changes, mediation results never (E18's oracle). *)
  sites : int;
      (** kernel sites (0..{!Multics_site.Site.max_sites}); above 0
          the gate traffic runs against a distributed fleet
          ({!Multics_site.Site}) instead of a single kernel: sessions
          shard across sites, every fifth interaction is a live
          ACL revocation (a fleet-wide connect storm inside the call),
          and cross-site cycles are billed to the mutating session.
          Timing changes, mediation results never (E20's oracle).
          [0] is the single-kernel seed behaviour, byte for byte. *)
}

val default : spec
(** 8 users, 4 interactions, small working sets, MLF, no cap, H6180. *)

type result = {
  r_policy : string;
  r_users : int;
  r_completed : int;  (** interactive interactions completed *)
  r_response : Multics_util.Stats.summary;  (** response time, cycles *)
  r_batch_turnaround : Multics_util.Stats.summary;
  r_cycles : int;  (** simulated time at quiescence *)
  r_throughput : float;  (** interactions per million cycles *)
  r_page_faults : int;
  r_sched : (string * int) list;  (** {!Sched.status} at the end of the run *)
  r_audit_granted : int;
  r_audit_refused : int;
  r_signature : int;
      (** order-independent digest of the audit trail (subject,
          ring, operation, target, verdict multiset) — equal across
          runs iff mediation was schedule-invariant *)
  r_smp : (string * int) list;
      (** plant-wide readings (connects sent/lost/retries/rescues,
          lock state); empty on a uniprocessor run *)
  r_fleet : (string * int) list;
      (** fleet-wide readings (sites, epochs, revocation storms,
          aggregated link traffic); empty when [sites = 0] *)
}

val run : spec -> result
(** Build the stack, run to quiescence, and summarize.  Deterministic:
    the same spec always yields the identical result. *)

(** {1 The fleet sweep} *)

type sweep_row = {
  sw_users : int;
  sw_sites : int;
  sw_ops : int;  (** primary fleet dispatches (pool setup included) *)
  sw_granted : int;
  sw_refused : int;
  sw_revocations : int;  (** each one a fleet-wide connect storm *)
  sw_fenced : int;  (** fenced refusals (0 under recoverable plans) *)
  sw_cross_cycles : int;  (** fleet clock: round trips + backoff stalls *)
  sw_epoch : int;
  sw_signature : int;  (** order-preserving fleet digest *)
}

val run_fleet_sweep :
  ?revoke_every:int ->
  ?fault_spec:string ->
  users:int -> sites:int -> seed:int -> unit -> sweep_row
(** Price the distribution layer directly (no scheduler): [users]
    logical users shard across [sites] kernels by id, sharing a small
    logged-in principal pool; every [revoke_every]-th user triggers a
    cross-site ACL revocation.  Sequential and deterministic, so
    [sw_signature] is comparable across site counts — and must be
    equal (E20).  Audit {e recording} is disabled for memory at the
    million-user points; mediation and its counters are unchanged. *)
