(* The traffic controller.

   Layering: this library sits ABOVE lib/proc (it drives Sim through
   the neutral scheduler record) and ABOVE lib/core (it registers a
   scheduler_control with System so the Sched_status/Sched_tune gates
   reach it).  Neither lower layer knows this module exists.

   The policy/mechanism split, after the paper's minimization program:

   - Mechanism (stays in ring 0, implemented here + Sim's slicing):
     cycle-accounted quanta, preemption of an expired quantum, and the
     working-set eligibility cap that bounds admission.

   - Policy (pluggable, can leave ring 0): which ready process runs
     next and how long its quantum is.  The External variant runs the
     policy entirely in unprivileged closures; every consultation is
     counted as an upcall.

   Nothing in this file touches the reference monitor: a scheduling
   decision moves WHEN work runs, never what it may access.  E17's
   parity oracle holds the subsystem to that. *)

module Sim = Multics_proc.Sim
module Fqueue = Multics_util.Fqueue
module Obs = Multics_obs.Obs
module Fault = Multics_fault.Fault
module System = Multics_kernel.System

(* Observability: the controller's live counters land in the global
   registry next to the gate and paging numbers, where the shell's
   [stats] command and experiment snapshots can see them. *)
let obs_dispatches = Obs.Local.counter "sched.dispatches"
let obs_preemptions = Obs.Local.counter "sched.preemptions"
let obs_expiries = Obs.Local.counter "sched.quantum_expiries"
let obs_stalls = Obs.Local.counter "sched.eligibility.stalls"
let obs_admissions = Obs.Local.counter "sched.admissions"
let obs_upcalls = Obs.Local.counter "sched.policy.upcalls"
let obs_promotions = Obs.Local.counter "sched.aging.promotions"
let obs_storms = Obs.Local.counter "sched.preempt_storms"
let obs_ready_depth = Obs.Local.counter "sched.queue.ready"
let obs_admission_depth = Obs.Local.counter "sched.queue.admission"
(* ----- The multi-level-feedback queues ----- *)

module Mlf = struct
  type entry = { e_pid : Sim.pid; e_since : int }

  type t = {
    queues : entry Fqueue.t array;
    levels : int;
    mutable base_quantum : int;
    mutable age_after : int;
    level_of : (Sim.pid, int) Hashtbl.t;  (** current level; absent = 0 *)
    mutable promos : int;
  }

  let create ~levels ~base_quantum ~age_after =
    if levels < 1 then invalid_arg "Sched.Mlf.create: levels must be >= 1";
    if base_quantum < 1 then invalid_arg "Sched.Mlf.create: base_quantum must be >= 1";
    if age_after < 1 then invalid_arg "Sched.Mlf.create: age_after must be >= 1";
    {
      queues = Array.make levels Fqueue.empty;
      levels;
      base_quantum;
      age_after;
      level_of = Hashtbl.create 64;
      promos = 0;
    }

  let level t pid = Option.value (Hashtbl.find_opt t.level_of pid) ~default:0

  let enqueue t ~now pid =
    let lvl = level t pid in
    Hashtbl.replace t.level_of pid lvl;
    t.queues.(lvl) <- Fqueue.push t.queues.(lvl) { e_pid = pid; e_since = now }

  (* Aging, run at selection time: the head of each lower queue that
     has waited at least [age_after] moves up one level (keeping its
     arrival stamp, so a deeply-sunk process keeps climbing).  One
     promotion per level per selection bounds the work. *)
  let age t ~now =
    for lvl = 1 to t.levels - 1 do
      match Fqueue.pop t.queues.(lvl) with
      | Some (e, rest) when now - e.e_since >= t.age_after ->
          t.queues.(lvl) <- rest;
          t.queues.(lvl - 1) <- Fqueue.push t.queues.(lvl - 1) e;
          Hashtbl.replace t.level_of e.e_pid (lvl - 1);
          t.promos <- t.promos + 1;
          Obs.Counter.incr (obs_promotions ())
      | _ -> ()
    done

  let select t ~now =
    age t ~now;
    let rec pick lvl =
      if lvl >= t.levels then None
      else
        match Fqueue.pop t.queues.(lvl) with
        | Some (e, rest) ->
            t.queues.(lvl) <- rest;
            Some e.e_pid
        | None -> pick (lvl + 1)
    in
    pick 0

  (* Quantum doubles per level: long computations sink to long, cheap
     quanta; the shift is clamped so a pathological level count cannot
     overflow. *)
  let quantum t pid = t.base_quantum lsl min (level t pid) 20

  let expired t pid = Hashtbl.replace t.level_of pid (min (t.levels - 1) (level t pid + 1))

  let blocked t pid = Hashtbl.replace t.level_of pid 0

  let retired t pid = Hashtbl.remove t.level_of pid

  let backlog t = Array.fold_left (fun acc q -> acc + Fqueue.length q) 0 t.queues

  let depths t = Array.to_list (Array.map Fqueue.length t.queues)

  let promotions t = t.promos

  let set_base_quantum t q =
    if q < 1 then invalid_arg "Sched.Mlf.set_base_quantum: must be >= 1";
    t.base_quantum <- q

  let set_age_after t a =
    if a < 1 then invalid_arg "Sched.Mlf.set_age_after: must be >= 1";
    t.age_after <- a
end

(* ----- Policies ----- *)

type external_policy = {
  xp_name : string;
  xp_enqueue : Sim.pid -> unit;
  xp_select : unit -> Sim.pid option;
  xp_quantum : Sim.pid -> int option;
  xp_expired : Sim.pid -> preempted:bool -> unit;
  xp_blocked : Sim.pid -> unit;
  xp_retired : Sim.pid -> unit;
  xp_backlog : unit -> int;
}

type policy =
  | Mlf of { levels : int; base_quantum : int; age_after : int }
  | Fifo
  | External of external_policy

let default_mlf = Mlf { levels = 4; base_quantum = 4000; age_after = 40_000 }

let policy_name = function
  | Mlf _ -> "mlf"
  | Fifo -> "fifo"
  | External xp -> xp.xp_name

let user_ring_mlf ?(levels = 4) ?(base_quantum = 4000) ?(age_after = 16) () =
  (* The user ring has no cycle clock, so aging runs on a logical tick
     per selection — a policy approximation the mechanism is
     indifferent to. *)
  let m = Mlf.create ~levels ~base_quantum ~age_after in
  let tick = ref 0 in
  {
    xp_name = "user-ring-mlf";
    xp_enqueue = (fun pid -> Mlf.enqueue m ~now:!tick pid);
    xp_select =
      (fun () ->
        incr tick;
        Mlf.select m ~now:!tick);
    xp_quantum = (fun pid -> Some (Mlf.quantum m pid));
    xp_expired = (fun pid ~preempted:_ -> Mlf.expired m pid);
    xp_blocked = (fun pid -> Mlf.blocked m pid);
    xp_retired = (fun pid -> Mlf.retired m pid);
    xp_backlog = (fun () -> Mlf.backlog m);
  }

(* ----- The controller ----- *)

type fifo_state = { mutable fq : Sim.pid Fqueue.t }

type impl = I_mlf of Mlf.t | I_fifo of fifo_state | I_ext of external_policy

type t = {
  sim : Sim.t;
  pol : policy;
  impl : impl;
  plant : Multics_smp.Smp.t option;
      (** multiprocessor plant: per-CPU run selection contends for its
          global lock, charged to the dispatched process *)
  mutable cap : int;  (** 0 = unlimited *)
  eligible : (Sim.pid, unit) Hashtbl.t;
  mutable admission : Sim.pid Fqueue.t;  (** ready but awaiting eligibility *)
  mutable dispatches : int;
  mutable preemptions : int;
  mutable expiries : int;
  mutable stalls : int;
  mutable admissions : int;
  mutable upcalls : int;
  mutable storms : int;
}

let sim t = t.sim
let policy t = t.pol
let name t = policy_name t.pol
let eligibility_cap t = t.cap
let eligible_count t = Hashtbl.length t.eligible

let upcall t =
  t.upcalls <- t.upcalls + 1;
  Obs.Counter.incr (obs_upcalls ())

(* Policy consultations, upcall-counted for the External variant. *)

let p_enqueue t pid =
  match t.impl with
  | I_mlf m -> Mlf.enqueue m ~now:(Sim.now t.sim) pid
  | I_fifo f -> f.fq <- Fqueue.push f.fq pid
  | I_ext xp ->
      upcall t;
      xp.xp_enqueue pid

let p_select t =
  match t.impl with
  | I_mlf m -> Mlf.select m ~now:(Sim.now t.sim)
  | I_fifo f -> (
      match Fqueue.pop f.fq with
      | Some (pid, rest) ->
          f.fq <- rest;
          Some pid
      | None -> None)
  | I_ext xp ->
      upcall t;
      xp.xp_select ()

let p_quantum t pid =
  match t.impl with
  | I_mlf m -> Some (Mlf.quantum m pid)
  | I_fifo _ -> None
  | I_ext xp ->
      upcall t;
      xp.xp_quantum pid

let p_expired t pid ~preempted =
  match t.impl with
  | I_mlf m -> Mlf.expired m pid
  | I_fifo _ -> ()
  | I_ext xp ->
      upcall t;
      xp.xp_expired pid ~preempted

let p_blocked t pid =
  match t.impl with
  | I_mlf m -> Mlf.blocked m pid
  | I_fifo _ -> ()
  | I_ext xp ->
      upcall t;
      xp.xp_blocked pid

let p_retired t pid =
  match t.impl with
  | I_mlf m -> Mlf.retired m pid
  | I_fifo _ -> ()
  | I_ext xp ->
      upcall t;
      xp.xp_retired pid

let p_backlog t =
  match t.impl with
  | I_mlf m -> Mlf.backlog m
  | I_fifo f -> Fqueue.length f.fq
  | I_ext xp -> xp.xp_backlog ()

(* ----- Eligibility (mechanism; identical under every policy) ----- *)

let has_room t = t.cap = 0 || Hashtbl.length t.eligible < t.cap

let admit t pid =
  Hashtbl.replace t.eligible pid ();
  t.admissions <- t.admissions + 1;
  Obs.Counter.incr (obs_admissions ());
  p_enqueue t pid

let rec try_admit t =
  if has_room t then
    match Fqueue.pop t.admission with
    | Some (pid, rest) ->
        t.admission <- rest;
        admit t pid;
        try_admit t
    | None -> ()

let enqueue t pid =
  if Hashtbl.mem t.eligible pid then p_enqueue t pid
  else if has_room t then admit t pid
  else begin
    t.stalls <- t.stalls + 1;
    Obs.Counter.incr (obs_stalls ());
    t.admission <- Fqueue.push t.admission pid
  end

let release_eligibility t pid =
  if Hashtbl.mem t.eligible pid then begin
    Hashtbl.remove t.eligible pid;
    try_admit t;
    (* A stalled process may now be both eligible and ready while VPs
       sit idle — redispatch immediately. *)
    Sim.reschedule t.sim
  end

let set_eligibility_cap t cap =
  if cap < 0 then invalid_arg "Sched.set_eligibility_cap: must be >= 0";
  t.cap <- cap;
  try_admit t;
  Sim.reschedule t.sim

(* ----- The Sim-facing hooks ----- *)

let storm_quantum = 64

let select t ~vp =
  match p_select t with
  | None -> None
  | Some pid ->
      t.dispatches <- t.dispatches + 1;
      Obs.Counter.incr (obs_dispatches ());
      (* Under a multiprocessor plant, this selection ran on the CPU
         the free VP maps to: it takes the global lock to pop the
         shared ready structure, and any wait for a peer CPU's
         dispatcher (or an in-flight connect broadcast) is charged to
         the process being dispatched.  Contention moves timing only —
         which pid was selected is already fixed. *)
      (match t.plant with
      | Some plant when Multics_smp.Smp.ncpus plant > 1 ->
          Multics_smp.Smp.set_current plant (vp mod Multics_smp.Smp.ncpus plant);
          let wait = Multics_smp.Smp.dispatch_lock plant ~now:(Sim.now t.sim) in
          if wait > 0 then Sim.perturb t.sim pid wait
      | Some _ | None -> ());
      Some pid

let quantum t pid =
  let q = p_quantum t pid in
  (* The preempt-storm fault site: consulted at every quantum grant;
     firing clamps the quantum to a sliver.  Pure extra switching cost
     — access decisions are not even reachable from here. *)
  match Sim.fault_injector t.sim with
  | Some inj when Fault.Injector.fire inj Fault.Sched_preempt ->
      t.storms <- t.storms + 1;
      Obs.Counter.incr (obs_storms ());
      Some (match q with Some q -> min q storm_quantum | None -> storm_quantum)
  | _ -> q

let quantum_expired t pid ~preempted =
  t.expiries <- t.expiries + 1;
  Obs.Counter.incr (obs_expiries ());
  if preempted then begin
    t.preemptions <- t.preemptions + 1;
    Obs.Counter.incr (obs_preemptions ())
  end;
  p_expired t pid ~preempted

let retired t pid =
  p_retired t pid;
  if Hashtbl.mem t.eligible pid then begin
    Hashtbl.remove t.eligible pid;
    try_admit t
  end

let backlog t = p_backlog t + Fqueue.length t.admission

let create ?(eligibility_cap = 0) ?(policy = default_mlf) ?plant sim =
  if eligibility_cap < 0 then invalid_arg "Sched.create: eligibility_cap must be >= 0";
  let impl =
    match policy with
    | Mlf { levels; base_quantum; age_after } -> I_mlf (Mlf.create ~levels ~base_quantum ~age_after)
    | Fifo -> I_fifo { fq = Fqueue.empty }
    | External xp -> I_ext xp
  in
  let t =
    {
      sim;
      pol = policy;
      impl;
      plant;
      cap = eligibility_cap;
      eligible = Hashtbl.create 64;
      admission = Fqueue.empty;
      dispatches = 0;
      preemptions = 0;
      expiries = 0;
      stalls = 0;
      admissions = 0;
      upcalls = 0;
      storms = 0;
    }
  in
  Sim.set_scheduler sim
    (Some
       {
         Sim.sched_name = policy_name policy;
         sched_enqueue = enqueue t;
         sched_select = (fun ~vp -> select t ~vp);
         sched_quantum = quantum t;
         sched_quantum_expired = quantum_expired t;
         sched_blocked = p_blocked t;
         sched_retired = retired t;
         sched_backlog = (fun () -> backlog t);
       });
  t

let uninstall t = Sim.set_scheduler t.sim None

let negotiated_cap ~core_frames ~working_set = max 1 (core_frames / max 1 working_set)

let status t =
  let ready = p_backlog t in
  let stalled = Fqueue.length t.admission in
  Obs.Counter.set (obs_ready_depth ()) ready;
  Obs.Counter.set (obs_admission_depth ()) stalled;
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    [
      ("admissions", t.admissions);
      ("aging.promotions", (match t.impl with I_mlf m -> Mlf.promotions m | _ -> 0));
      ("dispatches", t.dispatches);
      ("eligibility.cap", t.cap);
      ("eligibility.stalls", t.stalls);
      ("eligible", Hashtbl.length t.eligible);
      ("policy.upcalls", t.upcalls);
      ("preempt.storms", t.storms);
      ("preemptions", t.preemptions);
      ("quantum_expiries", t.expiries);
      ("queue.admission", stalled);
      ("queue.ready", ready);
    ]

let tune t ~param ~value =
  match param with
  | "cap" ->
      if value < 0 then Error "cap must be >= 0 (0 = unlimited)"
      else begin
        set_eligibility_cap t value;
        Ok ()
      end
  | "quantum" -> (
      if value < 1 then Error "quantum must be >= 1"
      else
        match t.impl with
        | I_mlf m ->
            Mlf.set_base_quantum m value;
            Ok ()
        | I_fifo _ | I_ext _ ->
            Error (Printf.sprintf "policy %s has no quantum parameter" (name t)))
  | "age_after" -> (
      if value < 1 then Error "age_after must be >= 1"
      else
        match t.impl with
        | I_mlf m ->
            Mlf.set_age_after m value;
            Ok ()
        | I_fifo _ | I_ext _ ->
            Error (Printf.sprintf "policy %s has no age_after parameter" (name t)))
  | other -> Error (Printf.sprintf "unknown parameter %S (try cap, quantum, age_after)" other)

let control t =
  {
    System.sc_policy = (fun () -> name t);
    sc_counters = (fun () -> status t);
    sc_tune = (fun ~param ~value -> tune t ~param ~value);
  }

let register t system = System.register_scheduler system (Some (control t))

(* ----- Kernel-surface accounting ----- *)

type surface = {
  surf_policy : string;
  surf_mechanism : int;
  surf_policy_stmts : int;
  surf_ring0 : int;
}

(* Statement counts over the scheduling subsystem, the lib/audit
   inventory convention (executable statements, not lines): the
   mechanism is Sim's slicing/preemption plumbing plus the eligibility
   machinery above; the MLF discipline is the policy half.  Fifo shows
   the floor — what a kernel pays for having any policy at all. *)
let mechanism_statements = 92

let mlf_statements = 68

let fifo_statements = 9

let surface = function
  | Mlf _ ->
      {
        surf_policy = "mlf";
        surf_mechanism = mechanism_statements;
        surf_policy_stmts = mlf_statements;
        surf_ring0 = mechanism_statements + mlf_statements;
      }
  | Fifo ->
      {
        surf_policy = "fifo";
        surf_mechanism = mechanism_statements;
        surf_policy_stmts = fifo_statements;
        surf_ring0 = mechanism_statements + fifo_statements;
      }
  | External xp ->
      {
        surf_policy = xp.xp_name;
        surf_mechanism = mechanism_statements;
        surf_policy_stmts = mlf_statements;
        surf_ring0 = mechanism_statements;
      }
