(** The traffic controller: Multics process scheduling as a kernel
    subsystem layered over [lib/proc]'s two-layer process model.

    The paper's minimization program applies squarely here: the
    {e mechanism} — cycle-accounted quanta, preemption, and the
    working-set eligibility cap — must stay inside the kernel boundary,
    while the priority {e policy} (which ready process runs next, and
    for how long) can be lifted out of ring 0.  Policies are therefore
    first class: {!constructor:Mlf} is the classical Multics
    multi-level-feedback controller, {!constructor:Fifo} strips policy
    to almost nothing, and {!constructor:External} delegates every
    policy question to unprivileged closures with each consultation
    counted as an upcall.  Experiment E17 measures the kernel-surface
    delta between them ({!surface}) and asserts that no policy can
    perturb mediation: reference-monitor decisions and audit totals are
    schedule-invariant.

    Eligibility is the admission-control half of the Multics
    controller: at most [cap] processes hold eligibility at once, sized
    against page control's core budget ({!negotiated_cap}) so the
    combined working sets fit in core.  Over-admission reproduces the
    thrashing knee (E17).  Eligibility is retained across page waits —
    a loaded working set stays protected — and surrendered at terminal
    waits ({!release_eligibility}) or termination. *)

module Sim = Multics_proc.Sim

(** {1 The multi-level-feedback queues}

    Exposed directly (not just as a policy) so the [e17/dispatch]
    bench and the unit tests can drive the queueing discipline without
    a simulator: new arrivals enter level 0 with quantum
    [base_quantum]; a quantum expiry demotes one level (quantum doubles
    per level); blocking — the interactive signature — boosts back to
    level 0; a queue head left waiting longer than [age_after] is
    promoted one level at selection time, so sustained high-priority
    load cannot starve the bottom queues. *)
module Mlf : sig
  type t

  val create : levels:int -> base_quantum:int -> age_after:int -> t
  (** Raises [Invalid_argument] unless [levels >= 1], [base_quantum >= 1]
      and [age_after >= 1]. *)

  val enqueue : t -> now:int -> Sim.pid -> unit
  val select : t -> now:int -> Sim.pid option
  (** Runs the aging pass, then pops the head of the highest non-empty
      queue. *)

  val quantum : t -> Sim.pid -> int
  (** [base_quantum lsl level]. *)

  val expired : t -> Sim.pid -> unit
  (** Demote one level (saturating at the bottom queue). *)

  val blocked : t -> Sim.pid -> unit
  (** Interactive boost: back to level 0. *)

  val retired : t -> Sim.pid -> unit
  val backlog : t -> int
  val depths : t -> int list
  (** Queue depth per level, top first. *)

  val promotions : t -> int
  (** Aging promotions performed so far. *)

  val set_base_quantum : t -> int -> unit
  val set_age_after : t -> int -> unit
end

(** {1 Policies} *)

(** A priority policy implemented outside the kernel boundary: the
    kernel keeps only the quantum/eligibility mechanism and consults
    these unprivileged closures for every policy question.  Each
    consultation is counted (["sched.policy.upcalls"]) — the price of
    moving policy out of ring 0, measured by E17. *)
type external_policy = {
  xp_name : string;
  xp_enqueue : Sim.pid -> unit;
  xp_select : unit -> Sim.pid option;
  xp_quantum : Sim.pid -> int option;
  xp_expired : Sim.pid -> preempted:bool -> unit;
  xp_blocked : Sim.pid -> unit;
  xp_retired : Sim.pid -> unit;
  xp_backlog : unit -> int;
}

type policy =
  | Mlf of { levels : int; base_quantum : int; age_after : int }
      (** the classical Multics controller, in ring 0 *)
  | Fifo  (** no priorities, no preemption: run to block *)
  | External of external_policy  (** policy lifted to the user ring *)

val default_mlf : policy
(** [Mlf { levels = 4; base_quantum = 4000; age_after = 40_000 }]. *)

val policy_name : policy -> string

val user_ring_mlf :
  ?levels:int -> ?base_quantum:int -> ?age_after:int -> unit -> external_policy
(** A multi-level-feedback policy living outside the kernel: same
    discipline as {!constructor:Mlf} but with no access to the cycle
    clock, so aging runs on a logical tick per selection
    ([age_after] defaults to 16 ticks).  Fresh state per call. *)

(** {1 The controller} *)

type t

val create :
  ?eligibility_cap:int -> ?policy:policy -> ?plant:Multics_smp.Smp.t -> Sim.t -> t
(** Create the traffic controller and install it on the simulator
    ({!Sim.set_scheduler}).  Install before spawning the processes it
    is to manage.  [eligibility_cap] of [0] (the default) means
    unlimited admission; the policy defaults to {!default_mlf}.

    With [plant] attached (and more than one CPU) every run selection
    maps its VP to a CPU, takes the plant's global lock to pop the
    shared ready structure, and charges the lock wait to the
    dispatched process — the deterministic contention model of the
    multiprocessor traffic controller.  Contention moves timing only;
    selection order is decided before the lock is consulted.

    If a fault injector is installed on the simulator, the
    [sched.preempt_storm] site is consulted at every quantum grant:
    when it fires, the quantum is clamped to a sliver, forcing a
    preemption storm — pure extra switching cost, never a change in
    what any process may touch. *)

val uninstall : t -> unit
(** Remove the controller from the simulator (back to seed FIFO). *)

val sim : t -> Sim.t
val policy : t -> policy
val name : t -> string

val negotiated_cap : core_frames:int -> working_set:int -> int
(** The eligibility cap page control's frame budget supports:
    [max 1 (core_frames / working_set)].  Admitting more than this
    many processes of the given working set guarantees their combined
    working sets exceed core — the thrashing knee. *)

val eligibility_cap : t -> int

val set_eligibility_cap : t -> int -> unit
(** Raising the cap admits stalled processes immediately (and
    redispatches); lowering it only throttles future admissions —
    holders keep eligibility until they surrender it. *)

val release_eligibility : t -> Sim.pid -> unit
(** Surrender the process's eligibility slot — the Multics controller
    strips eligibility at a terminal wait, not at a page wait.  Called
    by the process itself just before blocking for think time; admits
    the longest-stalled process, if any, in its place. *)

val eligible_count : t -> int

val status : t -> (string * int) list
(** Live counters and gauges, sorted by name: dispatches, preemptions,
    quantum expiries, eligibility stalls and admissions, policy
    upcalls, aging promotions, preempt storms, queue depths, cap. *)

val tune : t -> param:string -> value:int -> (unit, string) result
(** Adjust a mechanism parameter: ["cap"] (eligibility cap, [>= 0],
    0 = unlimited), ["quantum"] (MLF base quantum, [>= 1]),
    ["age_after"] (MLF aging threshold, [>= 1]).  [Error] names an
    unknown parameter, a bad value, or a policy without the knob. *)

val control : t -> Multics_kernel.System.scheduler_control
(** The closure record for {!Multics_kernel.System.register_scheduler},
    wiring the [Sched_status] / [Sched_tune] gates to this instance. *)

val register : t -> Multics_kernel.System.t -> unit
(** [register_scheduler system (Some (control t))]. *)

(** {1 Kernel-surface accounting} *)

type surface = {
  surf_policy : string;
  surf_mechanism : int;
      (** statements of quantum/eligibility mechanism — ring 0 always *)
  surf_policy_stmts : int;  (** statements of priority policy *)
  surf_ring0 : int;  (** total statements inside the kernel boundary *)
}

val surface : policy -> surface
(** Statement counts for the scheduling subsystem under each policy,
    following the [lib/audit] inventory convention: the mechanism
    (slicing, preemption, eligibility — in [Sim] and here) cannot leave
    ring 0; the policy statements leave with {!constructor:External}.
    Feeds E17's kernel-surface table alongside [e12_kernel_inventory]. *)
