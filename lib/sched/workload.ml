(* The multi-user timesharing workload driver.

   Everything a session does — think times, page touches, which gate
   it calls, whether that call is one the monitor will refuse — is
   drawn from a Prng stream keyed by (seed, role.index) or derived
   from the interaction number.  The schedule decides only WHEN those
   demands execute.  E17 leans on exactly that split: the audit-trail
   digest must come out identical under every scheduling policy. *)

module Sim = Multics_proc.Sim
module Obs = Multics_obs.Obs
module Fault = Multics_fault.Fault
module Memory = Multics_mm.Memory
module Page_id = Multics_mm.Page_id
module Page_control = Multics_vm.Page_control
module System = Multics_kernel.System
module Api = Multics_kernel.Api
module Config = Multics_kernel.Config
module Audit_log = Multics_kernel.Audit_log
module Prng = Multics_util.Prng
module Stats = Multics_util.Stats
module Cost = Multics_machine.Cost
module Label = Multics_access.Label
module Smp = Multics_smp.Smp
module Site = Multics_site.Site
module Acl = Multics_access.Acl

let obs_response = Obs.Local.histogram "sched.response.cycles"
type policy_choice = Use_mlf | Use_fifo | Use_external

let policy_choice_name = function
  | Use_mlf -> "mlf"
  | Use_fifo -> "fifo"
  | Use_external -> "external"

let policy_choice_of_string = function
  | "mlf" -> Some Use_mlf
  | "fifo" -> Some Use_fifo
  | "external" -> Some Use_external
  | _ -> None

type spec = {
  seed : int;
  users : int;
  interactions : int;
  think : int;
  service : int;
  working_set : int;
  passes : int;
  batch : int;
  batch_chunks : int;
  batch_chunk : int;
  daemons : int;
  gate_calls : bool;
  vps : int;
  core : int;
  bulk : int;
  disk : int;
  cap : int;
  policy : policy_choice;
  fault_spec : string;
  cost : Cost.t;
  cpus : int;
      (** simulated CPUs; above 1 a multiprocessor plant is built
          (per-CPU associative memories, connect coherence, lock
          contention) — timing changes, mediation results never *)
  sites : int;
      (** kernel sites; above 0 the gate traffic runs against a
          distributed fleet (lib/site) instead of a single kernel —
          cross-site replication cycles are charged to the calling
          session, and the mediation digest must still be
          site-count-invariant (E20's oracle) *)
}

let default =
  {
    seed = 42;
    users = 8;
    interactions = 4;
    think = 20_000;
    service = 2_000;
    working_set = 4;
    passes = 3;
    batch = 2;
    batch_chunks = 6;
    batch_chunk = 4_000;
    daemons = 1;
    gate_calls = true;
    vps = 2;
    core = 0;
    bulk = 0;
    disk = 0;
    cap = 0;
    policy = Use_mlf;
    fault_spec = "";
    cost = Cost.h6180;
    (* 1, not [Smp.default_ncpus ()]: the seed workloads (and the CI
       matrix's MULTICS_NCPU sweep) must stay deterministic; tests opt
       into multi-CPU explicitly. *)
    cpus = 1;
    (* 0 = no fleet: the single-kernel seed behaviour, byte for byte.
       Fleet runs opt in explicitly (E20, the site tests). *)
    sites = 0;
  }

type result = {
  r_policy : string;
  r_users : int;
  r_completed : int;
  r_response : Stats.summary;
  r_batch_turnaround : Stats.summary;
  r_cycles : int;
  r_throughput : float;
  r_page_faults : int;
  r_sched : (string * int) list;
  r_audit_granted : int;
  r_audit_refused : int;
  r_signature : int;
  r_smp : (string * int) list;
      (** plant-wide readings (connects sent/lost/retries, lock state);
          empty on a uniprocessor run *)
  r_fleet : (string * int) list;
      (** fleet-wide readings (sites, epochs, revocation storms, link
          traffic); empty when [sites = 0] *)
}

let make_policy = function
  | Use_mlf -> Sched.default_mlf
  | Use_fifo -> Sched.Fifo
  | Use_external -> Sched.External (Sched.user_ring_mlf ())

(* Order-independent digest of the audit trail: the record multiset
   (seq numbers excluded — assignment order IS the schedule), sorted
   and folded through djb2.  Equal digests <=> mediation emitted the
   same decisions, whatever order the scheduler ran things in. *)
let mediation_signature system =
  let verdict_str = function
    | Audit_log.Granted -> "granted"
    | Audit_log.Refused why -> "refused:" ^ why
  in
  Audit_log.records (System.audit system)
  |> List.map (fun (r : Audit_log.record) ->
         Printf.sprintf "%s|%d|%s|%s|%s" r.subject r.ring r.operation r.target
           (verdict_str r.verdict))
  |> List.sort String.compare
  |> List.fold_left
       (fun h s ->
         let h = ref h in
         String.iter (fun c -> h := ((!h * 33) + Char.code c) land 0x3FFF_FFFF) s;
         (!h * 33) land 0x3FFF_FFFF)
       5381

let run spec =
  if spec.users < 0 || spec.batch < 0 || spec.daemons < 0 then
    invalid_arg "Workload.run: negative population";
  let sim = Sim.create ~cost:spec.cost ~virtual_processors:(spec.vps + 2) in
  (* Auto-size memory so the DEFAULT fits every working set (scheduling
     measurements undisturbed by paging); an explicit ~core below the
     demand is how E17 turns the thrashing knee on. *)
  let distinct = (spec.users + spec.batch) * spec.working_set in
  let core = if spec.core > 0 then spec.core else distinct + 8 in
  let bulk = if spec.bulk > 0 then spec.bulk else max 8 distinct in
  let disk = if spec.disk > 0 then spec.disk else distinct + 16 in
  let mem = Memory.create ~cost:spec.cost ~core ~bulk ~disk in
  let injector =
    if String.equal spec.fault_spec "" then None
    else
      match Fault.Plan.parse ~seed:spec.seed spec.fault_spec with
      | Ok plan -> Some (Fault.Injector.create plan)
      | Error why -> invalid_arg ("Workload.run: " ^ why)
  in
  Sim.set_faults sim injector;
  let pc = Page_control.create ?faults:injector sim ~mem ~discipline:Page_control.Parallel_processes in
  Page_control.start pc;
  (* The multiprocessor plant, when asked for.  At [cpus = 1] no plant
     exists and every coherence hook is a no-op — the uniprocessor
     seed behaviour, byte for byte. *)
  let plant =
    if spec.cpus <= 1 then None
    else begin
      let p = Smp.create ~ncpus:spec.cpus ~ptw_gens:(Page_control.ptw_gens pc) ~cost:spec.cost () in
      Smp.set_now p (fun () -> Sim.now sim);
      Smp.set_faults p injector;
      Some p
    end
  in
  let sched =
    Sched.create ~eligibility_cap:spec.cap ~policy:(make_policy spec.policy) ?plant sim
  in
  (* Route this process's next mediated work through its home CPU, and
     bill connect/lock cycles to it.  Deterministic: the home CPU is a
     pure function of the pid. *)
  let on_cpu pid =
    match plant with
    | None -> ()
    | Some pl ->
        Smp.set_current pl (Smp.cpu_for pl ~key:pid);
        Smp.set_charge pl (fun cycles -> Sim.perturb sim pid cycles)
  in
  (* A page touch also walks the home CPU's own PTW lookaside front: a
     front miss costs this CPU the page-table walk even when page
     control's shared lookaside is warm — each processor has its own. *)
  let touch_pages pid pages =
    (match plant with
    | None -> ()
    | Some pl ->
        on_cpu pid;
        Array.iter
          (fun page ->
            if not (Smp.ptw_touch pl ~page:(Page_control.page_sid pc page)) then
              Sim.compute spec.cost.Cost.ptw_fetch)
          pages);
    Array.iter (fun page -> ignore (Page_control.reference pc ~pid ~page)) pages
  in
  (* Gate traffic runs against a booted kernel through a small pool of
     logged-in principals — the audit subject for session i is a pure
     function of i, never of the schedule. *)
  (* The scratch segment per pool principal: the standing revocation
     target.  Re-granting its ACL is idempotent on policy but runs the
     full setfaults path — and, on a fleet, the cross-site connect
     storm. *)
  let scratch_path i = Printf.sprintf ">udd>Load>User%d>scratch" i in
  let scratch_acl i = Acl.of_strings [ (Printf.sprintf "User%d.Load.*" i, "rw") ] in
  let fleet =
    if spec.sites <= 0 || not spec.gate_calls then None
    else begin
      let f = Site.create ~nsites:spec.sites () in
      Site.set_faults f injector;
      Some f
    end
  in
  let system, handles =
    match fleet with
    | Some f ->
        (* The same principal pool as the single-kernel path, logged in
           fleet-wide; session i is fleet user i, so sessions shard
           across every site while sharing the pool's handles (valid on
           every site — logins are replicated). *)
        let pool = min 4 (max 1 spec.users) in
        let handles =
          Array.init pool (fun i ->
              let person = Printf.sprintf "User%d" i in
              Site.add_account f ~person ~project:"Load" ~password:"pw"
                ~clearance:Label.unclassified;
              let handle =
                match Site.login f ~person ~project:"Load" ~password:"pw" with
                | Ok handle -> handle
                | Error e -> failwith (System.login_error_to_string e)
              in
              (match
                 Site.dispatch f ~user:i ~handle
                   (Api.Call.Create_segment_by_path
                      {
                        path = scratch_path i;
                        acl = scratch_acl i;
                        label = Label.unclassified;
                        brackets = None;
                      })
               with
              | Ok _ -> ()
              | Error e -> failwith (Api.error_to_string e));
              match Site.dispatch f ~user:i ~handle Api.Call.Create_channel with
              | Ok (Api.Call.Channel channel) -> (handle, channel)
              | Ok _ -> failwith "workload: unexpected reply to Create_channel"
              | Error e -> failwith (Api.error_to_string e))
        in
        (None, handles)
    | None ->
    if not spec.gate_calls then (None, [||])
    else begin
      let system = System.create Config.kernel_6180 in
      (* With the plant attached, every descriptor mutation from here
         on broadcasts connects before returning. *)
      System.attach_plant system plant;
      (* The same plan storms the kernel's own sites (cache.flush and
         the gate sites): parity must hold under flush storms too.  Sites
         without a rule never fire, so an empty or unrelated plan
         leaves gate traffic untouched. *)
      if Option.is_some injector then System.set_faults system injector;
      let pool = min 4 (max 1 spec.users) in
      let handles =
        Array.init pool (fun i ->
            let person = Printf.sprintf "User%d" i in
            ignore
              (System.add_account system ~person ~project:"Load" ~password:"pw"
                 ~clearance:Label.unclassified);
            let handle =
              match System.login system ~person ~project:"Load" ~password:"pw" with
              | Ok handle -> handle
              | Error e -> failwith (System.login_error_to_string e)
            in
            (* One IPC channel per principal: the granted call below is
               a wakeup on it — IPC gates exist in every kernel
               configuration, unlike the naming gates. *)
            match Api.Call.dispatch system ~handle Api.Call.Create_channel with
            | Ok (Api.Call.Channel channel) -> (handle, channel)
            | Ok _ -> failwith "workload: unexpected reply to Create_channel"
            | Error e -> failwith (Api.error_to_string e))
      in
      (Some system, handles)
    end
  in
  let responses = ref [] in
  let completed = ref 0 in
  let turnarounds = ref [] in
  let live_sessions = ref spec.users in
  let live_batch = ref spec.batch in
  (* Interactive sessions: think at the terminal (eligibility
     surrendered), wake, make [passes] demand passes over the working
     set, call a gate, answer. *)
  for i = 0 to spec.users - 1 do
    let prng = Prng.create_labeled ~seed:spec.seed ~label:(Printf.sprintf "session.%d" i) in
    let pages =
      Array.init (max 1 spec.working_set) (fun p -> Page_id.make ~seg_uid:(1000 + i) ~page_no:p)
    in
    let tty = Sim.new_channel sim ~name:(Printf.sprintf "tty.%d" i) in
    ignore
      (Sim.spawn sim ~name:(Printf.sprintf "user.%d" i) (fun pid ->
           for n = 1 to spec.interactions do
             (* Terminal wait: the controller strips eligibility here,
                not at page waits. *)
             Sched.release_eligibility sched pid;
             let think = (spec.think / 2) + Prng.int prng (max 1 spec.think) in
             Sim.at sim ~delay:think (fun () -> Sim.wakeup sim tty);
             Sim.block tty;
             let t0 = Sim.now sim in
             for _pass = 1 to spec.passes do
               touch_pages pid pages;
               Sim.compute spec.service
             done;
             (match (system, fleet) with
             | None, None -> ()
             | _, Some f ->
                 let handle, channel = handles.(i mod Array.length handles) in
                 on_cpu pid;
                 Sim.compute (Cost.round_trip_call_cost spec.cost ~cross_ring:true);
                 let before = Site.now f in
                 (* The single-kernel call mix, plus a live revocation
                    every fifth interaction: the scratch re-grant runs
                    the cross-site connect storm inside the call. *)
                 (if n mod 3 = 0 then
                    ignore
                      (Site.dispatch f ~user:i ~handle
                         (Api.Call.Read_word { segno = 9999; offset = 0 }))
                  else if n mod 5 = 0 then
                    ignore
                      (Site.dispatch f ~user:i ~handle
                         (Api.Call.Set_acl_by_path
                            {
                              path = scratch_path (i mod Array.length handles);
                              acl = scratch_acl (i mod Array.length handles);
                            }))
                  else
                    ignore
                      (Site.dispatch f ~user:i ~handle (Api.Call.Send_wakeup { channel })));
                 (* Bill the fleet's round trips and backoff stalls to
                    the session that mutated. *)
                 let delta = Site.now f - before in
                 if delta > 0 then Sim.perturb sim pid delta
             | Some sys, None ->
                 let handle, channel = handles.(i mod Array.length handles) in
                 on_cpu pid;
                 Sim.compute (Cost.round_trip_call_cost spec.cost ~cross_ring:true);
                 (* Every third call is one the monitor refuses (a read
                    through a segment number the process never had), so
                    the parity digest covers refusals too. *)
                 if n mod 3 = 0 then
                   ignore (Api.Call.dispatch sys ~handle (Api.Call.Read_word { segno = 9999; offset = 0 }))
                 else ignore (Api.Call.dispatch sys ~handle (Api.Call.Send_wakeup { channel })));
             let rt = Sim.now sim - t0 in
             responses := rt :: !responses;
             Obs.Histogram.observe (obs_response ()) rt;
             incr completed
           done;
           decr live_sessions))
  done;
  (* Absentee jobs: no terminal, no thinking — grind chunks, keep
     eligibility until the job ends.  Under MLF they sink to the long
     quanta; aging keeps them from starving. *)
  for b = 0 to spec.batch - 1 do
    let prng = Prng.create_labeled ~seed:spec.seed ~label:(Printf.sprintf "batch.%d" b) in
    let pages =
      Array.init (max 1 spec.working_set) (fun p ->
          Page_id.make ~seg_uid:(5000 + b) ~page_no:p)
    in
    ignore
      (Sim.spawn sim ~name:(Printf.sprintf "batch.%d" b) (fun pid ->
           let t0 = Sim.now sim in
           for _chunk = 1 to spec.batch_chunks do
             touch_pages pid pages;
             Sim.compute (spec.batch_chunk + Prng.int prng 64)
           done;
           turnarounds := (Sim.now sim - t0) :: !turnarounds;
           decr live_batch))
  done;
  (* Daemons: tick in the background while any load remains, giving up
     eligibility at every sleep. *)
  for d = 0 to spec.daemons - 1 do
    let bell = Sim.new_channel sim ~name:(Printf.sprintf "daemon.%d" d) in
    ignore
      (Sim.spawn sim ~name:(Printf.sprintf "daemon.%d" d) (fun pid ->
           while !live_sessions > 0 || !live_batch > 0 do
             Sim.compute 500;
             Sched.release_eligibility sched pid;
             Sim.at sim ~delay:2_000 (fun () -> Sim.wakeup sim bell);
             Sim.block bell
           done))
  done;
  Sim.run sim;
  let cycles = Sim.now sim in
  let granted, refused =
    match (system, fleet) with
    | _, Some f -> (Site.granted f, Site.refused f)
    | Some sys, None ->
        let audit = System.audit sys in
        (Audit_log.length audit - Audit_log.refusal_count audit, Audit_log.refusal_count audit)
    | None, None -> (0, 0)
  in
  {
    r_policy = policy_choice_name spec.policy;
    r_users = spec.users;
    r_completed = !completed;
    r_response = Stats.summarize_ints !responses;
    r_batch_turnaround = Stats.summarize_ints !turnarounds;
    r_cycles = cycles;
    r_throughput = (if cycles = 0 then 0. else float_of_int !completed *. 1_000_000. /. float_of_int cycles);
    r_page_faults = Page_control.fault_count pc;
    r_sched = Sched.status sched;
    r_audit_granted = granted;
    r_audit_refused = refused;
    r_signature =
      (match (system, fleet) with
      | _, Some f ->
          (* The multiset digest: the scheduler's interleaving shifts
             with cross-site timing, and parity must not care. *)
          Site.multiset_signature f
      | Some sys, None -> mediation_signature sys
      | None, None -> 0);
    r_smp = (match plant with None -> [] | Some pl -> fst (Smp.status pl));
    r_fleet =
      (match fleet with
      | None -> []
      | Some f ->
          let sent, dropped, severed =
            List.fold_left
              (fun (s, d, v) (_, _, counters) ->
                let c name = try List.assoc name counters with Not_found -> 0 in
                (s + c "sent", d + c "dropped", v + c "severed"))
              (0, 0, 0) (Site.link_table f)
          in
          [
            ("sites", Site.nsites f);
            ("epoch", Site.epoch f);
            ("revocations", Site.revocations f);
            ("fenced.refusals", Site.fenced_refusals f);
            ("cross.cycles", Site.now f);
            ("link.sent", sent);
            ("link.dropped", dropped);
            ("link.severed", severed);
          ]);
  }

(* ----- The fleet sweep -----

   A direct (un-scheduled) driver for pricing the distribution layer
   at populations a Sim-driven session workload cannot reach: logical
   users shard across the fleet by id and share a small logged-in
   principal pool, exactly as the paper's answering service multiplexes
   daemons over terminals.  Sequential and deterministic, so the
   order-preserving fleet digest is comparable across site counts. *)

type sweep_row = {
  sw_users : int;
  sw_sites : int;
  sw_ops : int;  (** primary fleet dispatches (pool setup included) *)
  sw_granted : int;
  sw_refused : int;
  sw_revocations : int;  (** each one a fleet-wide connect storm *)
  sw_fenced : int;  (** fenced refusals (0 under recoverable plans) *)
  sw_cross_cycles : int;  (** fleet clock: round trips + backoff stalls *)
  sw_epoch : int;
  sw_signature : int;  (** order-preserving fleet digest *)
}

let run_fleet_sweep ?(revoke_every = 1_000) ?(fault_spec = "") ~users ~sites ~seed () =
  if users < 1 then invalid_arg "Workload.run_fleet_sweep: users must be positive";
  let fleet = Site.create ~nsites:sites () in
  (match fault_spec with
  | "" -> ()
  | fs -> (
      match Fault.Plan.parse ~seed fs with
      | Ok plan -> Site.set_faults fleet (Some (Fault.Injector.create plan))
      | Error why -> invalid_arg ("Workload.run_fleet_sweep: " ^ why)));
  (* Recording off, counters on: at a million users a full audit trail
     would swamp memory; the E20 oracle runs (small populations) keep
     the trail and check it.  Mediation itself is unchanged. *)
  for site = 0 to sites - 1 do
    Audit_log.set_enabled (System.audit (Site.member_system fleet site)) false
  done;
  let scratch_path i = Printf.sprintf ">udd>Load>User%d>scratch" i in
  let scratch_acl i = Acl.of_strings [ (Printf.sprintf "User%d.Load.*" i, "rw") ] in
  let pool = min 4 users in
  let handles =
    Array.init pool (fun i ->
        let person = Printf.sprintf "User%d" i in
        Site.add_account fleet ~person ~project:"Load" ~password:"pw"
          ~clearance:Label.unclassified;
        let handle =
          match Site.login fleet ~person ~project:"Load" ~password:"pw" with
          | Ok handle -> handle
          | Error e -> failwith (System.login_error_to_string e)
        in
        (match
           Site.dispatch fleet ~user:i ~handle
             (Api.Call.Create_segment_by_path
                {
                  path = scratch_path i;
                  acl = scratch_acl i;
                  label = Label.unclassified;
                  brackets = None;
                })
         with
        | Ok _ -> ()
        | Error e -> failwith (Api.error_to_string e));
        match Site.dispatch fleet ~user:i ~handle Api.Call.Create_channel with
        | Ok (Api.Call.Channel channel) -> (handle, channel)
        | Ok _ -> failwith "workload: unexpected reply to Create_channel"
        | Error e -> failwith (Api.error_to_string e))
  in
  for u = 0 to users - 1 do
    let p = u mod pool in
    let handle, channel = handles.(p) in
    if revoke_every > 0 && u mod revoke_every = 0 then
      ignore
        (Site.dispatch fleet ~user:u ~handle
           (Api.Call.Set_acl_by_path { path = scratch_path p; acl = scratch_acl p }))
    else if u mod 3 = 0 then
      ignore
        (Site.dispatch fleet ~user:u ~handle (Api.Call.Read_word { segno = 9999; offset = 0 }))
    else ignore (Site.dispatch fleet ~user:u ~handle (Api.Call.Send_wakeup { channel }))
  done;
  {
    sw_users = users;
    sw_sites = sites;
    sw_ops = Site.granted fleet + Site.refused fleet;
    sw_granted = Site.granted fleet;
    sw_refused = Site.refused fleet;
    sw_revocations = Site.revocations fleet;
    sw_fenced = Site.fenced_refusals fleet;
    sw_cross_cycles = Site.now fleet;
    sw_epoch = Site.epoch fleet;
    sw_signature = Site.signature fleet;
  }
