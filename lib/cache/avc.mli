(** A generic fixed-capacity, epoch-versioned decision cache — the
    simulated counterpart of the 6180's associative memory, generalised
    to back the policy-verdict cache, the per-process SDW associative
    memory and the PTW lookaside.

    Revocation correctness is the design center: entries are stamped
    with generation counters (one global, one per object id) at
    insertion, and any mutation that could change a cached decision
    bumps a counter.  A lookup whose stamps are stale is a miss — the
    entry is dropped on the spot — so invalidation is immediate, never
    TTL-based, and a stale Permit can never outlive the authority that
    granted it. *)

(** Generation counters.  A [Gen.t] may be shared by several caches so
    one bump invalidates every decision derived from the mutated
    object.

    {b Sparse-table pruning rule.}  Per-object counters for hashed ids
    (page ids and the like) live in a sparse hashtable; on a long run
    those ids churn forever and the table would grow without bound.
    When a bump would push the table past an internal limit it is
    {e epoch-compacted}: the global generation is bumped first — staling
    every entry of every cache sharing the [Gen.t] — and only then is
    the table cleared.  Dropping a single object's counter in isolation
    would be unsound (an entry stamped with the pre-bump counter would
    read as fresh again once the counter resets to 0 — a revoked Permit
    resurrected); compaction after a global bump cannot resurrect
    anything because no pre-compaction stamp can match the new global
    epoch.  The cost is one full-flush-equivalent miss storm per
    [2^12] distinct hashed objects — performance, never correctness. *)
module Gen : sig
  type t

  val create : unit -> t
  val global : t -> int
  val of_object : t -> int -> int

  val bump_global : t -> unit
  (** Invalidate every entry of every cache sharing this [Gen.t]. *)

  val bump_object : t -> int -> unit
  (** Invalidate entries whose decisions derive from object [obj].
      May trigger an epoch compaction (see the pruning rule above). *)

  val sparse_limit : int
  (** Size bound on the sparse per-object table; reaching it triggers
      compaction. *)

  val compact : t -> unit
  (** Force an epoch compaction: bump the global generation, then clear
      the sparse table.  Sound by the pruning rule above. *)

  val sparse_size : t -> int
  (** Current sparse-table population (for tests and gauges). *)

  val compactions : t -> int
  (** Number of compactions performed on this [Gen.t]; also counted
      globally under ["cache.gen.compactions"]. *)
end

type ('k, 'v) t

val create :
  ?capacity:int ->
  ?gens:Gen.t ->
  ?hash:('k -> int) ->
  ?equal:('k -> 'k -> bool) ->
  name:string ->
  unit ->
  ('k, 'v) t
(** [capacity] defaults to 256 and is rounded up to a power of two.
    The table is a direct-mapped slot array (hardware-style): an
    insertion whose slot is occupied by a different key displaces the
    resident entry rather than maintain LRU bookkeeping.  Displacement
    only ever discards a cached decision, so it is always sound.
    Counters are registered in {!Multics_obs.Obs.Registry.global} under
    ["cache.<name>.hits"/"misses"/"invalidations"/"insertions"/
    "flushes"]; instances sharing a [name] share counters.

    [hash]/[equal] default to the polymorphic [Hashtbl.hash] and [=].
    Hot-path instances should supply a cheap [hash] (a few integer
    mixes): the polymorphic hash re-traverses the whole key on every
    lookup, which can cost more than the decision the cache was meant
    to bypass.  [hash] need not be injective — two keys mapping to the
    same slot simply displace one another; [equal] keeps a collision
    from ever being mistaken for a hit. *)

val name : ('k, 'v) t -> string
val capacity : ('k, 'v) t -> int
val gens : ('k, 'v) t -> Gen.t
val size : ('k, 'v) t -> int

val set_flush_probe : ('k, 'v) t -> (unit -> bool) option -> unit
(** Install a fault-injection probe consulted on every lookup; when it
    fires the cache is flushed first (the [cache.flush] storm site).
    Flush storms cost performance, never correctness. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Stale entries (stamp mismatch) are dropped and counted as an
    invalidation plus a miss. *)

val add : ('k, 'v) t -> obj:int -> 'k -> 'v -> unit
(** Insert a decision derived from object [obj], stamped with the
    current generations. *)

val find_or_add : ('k, 'v) t -> obj:int -> 'k -> (unit -> 'v) -> 'v * bool
(** [find_or_add t ~obj key compute] returns [(value, was_hit)]. *)

val keys : ('k, 'v) t -> 'k list
(** Keys of the entries that would currently hit (stale entries are
    skipped); order unspecified.  For invariant checks. *)

val entries : ('k, 'v) t -> ('k * 'v) list
(** Key/value pairs of the entries that would currently hit (stale
    entries are skipped); order unspecified.  Read-only: no counter
    moves, no entry is dropped.  For invariant checks. *)

val invalidate_object : ('k, 'v) t -> int -> unit
val invalidate_all : ('k, 'v) t -> unit
val flush : ('k, 'v) t -> unit

val counters : ('k, 'v) t -> (string * int) list
(** Current readings of this cache's obs counters (shared by name). *)

val hit_ratio : ('k, 'v) t -> float
(** hits / (hits + misses), 0 when no lookups yet. *)
