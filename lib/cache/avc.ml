(* A revocation-correct decision cache — the associative memory of the
   6180, generalised.

   The 6180 the paper describes pays the full mediation cost (descriptor
   fetch, access computation) only on an associative-memory miss; on a
   hit the hardware replays a previously computed decision.  That
   substitution is only sound because Multics invalidates the
   associative memory the moment any input to the cached decision
   changes ("setfaults" on an attribute change) — revocation is
   immediate, never deferred to a timeout.

   This module simulates that discipline with epochs instead of selective
   search: every cached entry is stamped with the generation counters
   current at insertion (one global, one per object).  Any mutation that
   could change a decision bumps a counter; a lookup whose stamps no
   longer match the live counters is treated as a miss and dropped.  A
   stale Permit therefore cannot outlive the authority that granted it:
   the entry dies in the same step as the ACL edit, label change,
   deletion, branch move or salvager repair that revoked it.

   The cache is deliberately generic: the same mechanism backs the
   policy-verdict cache in the file-system hierarchy, the per-process
   SDW associative memory, and the PTW lookaside in page control.  Each
   instance reports hits/misses/invalidations through [lib/obs] under
   "cache.<name>.*", and may carry a fault-injection probe that models
   spurious full flushes (the [cache.flush] site): a flush storm may
   cost performance, never correctness. *)

module Obs = Multics_obs.Obs

module Gen = struct
  (* [of_object] sits on the hit path of every cache lookup, so the
     common case — small non-negative object ids (uids, segnos) — reads
     a dense array grown on first bump; anything outside that range
     (e.g. hashed page ids) falls back to a hashtable.  An id below
     [dense_limit] that the array has not grown to cover was never
     bumped, hence generation 0. *)
  type t = {
    mutable global : int;
    mutable dense : int array;
    sparse : (int, int) Hashtbl.t;
    mutable compactions : int;
  }

  let dense_limit = 1 lsl 16

  (* The sparse table's size bound.  Hashed ids (page ids) churn
     forever on a long run — objects are deleted, their ids never
     reused — so without pruning the table grows without bound.  When
     a bump would push it past this limit the whole table is folded
     into the global epoch instead (see [compact]). *)
  let sparse_limit = 1 lsl 12

  let obs_compactions = Obs.Local.counter "cache.gen.compactions"
  let create () =
    { global = 0; dense = Array.make 256 0; sparse = Hashtbl.create 16; compactions = 0 }

  let global t = t.global

  let of_object t obj =
    if obj >= 0 && obj < Array.length t.dense then Array.unsafe_get t.dense obj
    else if obj >= 0 && obj < dense_limit then 0
    else Option.value (Hashtbl.find_opt t.sparse obj) ~default:0

  let bump_global t = t.global <- t.global + 1

  (* Epoch compaction — the pruning rule for sparse per-object entries.
     Dropping one object's entry in isolation would be UNSOUND: an
     entry stamped with generation 0 before the object was ever bumped
     would read as fresh again once [of_object] falls back to 0 — a
     revoked Permit resurrected.  Folding the table into the global
     epoch first makes the drop sound: after [bump_global] no existing
     entry in any cache sharing this [Gen.t] can match, so every
     per-object counter is dead weight and the table can be cleared
     wholesale.  Cost: one full-flush-equivalent miss storm, bounded to
     once per [sparse_limit] distinct hashed objects — performance,
     never correctness. *)
  let compact t =
    bump_global t;
    Hashtbl.reset t.sparse;
    t.compactions <- t.compactions + 1;
    if Obs.enabled () then Obs.Counter.incr (obs_compactions ())

  let bump_object t obj =
    if obj >= 0 && obj < dense_limit then begin
      if obj >= Array.length t.dense then begin
        let grown = Array.make (max (obj + 1) (2 * Array.length t.dense)) 0 in
        Array.blit t.dense 0 grown 0 (Array.length t.dense);
        t.dense <- grown
      end;
      t.dense.(obj) <- t.dense.(obj) + 1
    end
    else begin
      if Hashtbl.length t.sparse >= sparse_limit && not (Hashtbl.mem t.sparse obj) then
        compact t;
      Hashtbl.replace t.sparse obj (of_object t obj + 1)
    end

  let sparse_size t = Hashtbl.length t.sparse
  let compactions t = t.compactions
end

type ('k, 'v) entry = { value : 'v; obj : int; g_global : int; g_obj : int }

(* The table is a direct-mapped slot array indexed by a caller-supplied
   integer hash, like the set-associative memories it simulates.  On
   the hot path this matters twice over: the polymorphic
   [Hashtbl.hash] would traverse the whole key (principal strings,
   label compartments) on every lookup, and a chained hashtable pays
   bucket-walk overhead — together they can cost more than recomputing
   a cheap decision, making the associative memory slower than the
   thing it bypasses.  A cheap key-specific hash (a few integer
   mixes), one array probe, and one key equality on the probable match
   keep a hit well under the recomputation cost, which is the entire
   point of the mechanism.

   Direct mapping also settles the replacement question the hardware
   way: a new decision whose slot is occupied by a different key
   simply displaces it.  Displacement only ever discards a cached
   decision, so it is always sound. *)
type ('k, 'v) t = {
  name : string;
  capacity : int;  (** number of slots, rounded up to a power of two *)
  mask : int;
  gens : Gen.t;
  hash : 'k -> int;
  equal : 'k -> 'k -> bool;
  slots : ('k * ('k, 'v) entry) option array;
  mutable population : int;
  mutable flush_probe : (unit -> bool) option;
  hits : Obs.Counter.t;
  misses : Obs.Counter.t;
  invalidations : Obs.Counter.t;
  insertions : Obs.Counter.t;
  flushes : Obs.Counter.t;
}

let counter name field =
  Obs.Registry.counter (Obs.Registry.global ()) (Printf.sprintf "cache.%s.%s" name field)

let rec pow2_at_least n acc = if acc >= n then acc else pow2_at_least n (acc * 2)

let create ?(capacity = 256) ?gens ?(hash = Hashtbl.hash) ?(equal = ( = )) ~name () =
  let gens = match gens with Some g -> g | None -> Gen.create () in
  let capacity = pow2_at_least (max 1 capacity) 1 in
  {
    name;
    capacity;
    mask = capacity - 1;
    gens;
    hash;
    equal;
    slots = Array.make capacity None;
    population = 0;
    flush_probe = None;
    hits = counter name "hits";
    misses = counter name "misses";
    invalidations = counter name "invalidations";
    insertions = counter name "insertions";
    flushes = counter name "flushes";
  }

let name t = t.name
let capacity t = t.capacity
let gens t = t.gens
let size t = t.population
let set_flush_probe t probe = t.flush_probe <- probe

let incr c = if Obs.enabled () then Obs.Counter.incr c

let flush t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  t.population <- 0;
  incr t.flushes

(* A fault-injected flush models the hardware clearing its associative
   memory at an arbitrary moment (power event, diagnostic, paranoid
   kernel).  Probed on every lookup so a storm plan hits the cache as
   often as the schedule dictates. *)
let probe_fault t =
  match t.flush_probe with Some fires when fires () -> flush t | _ -> ()

let fresh t e = e.g_global = Gen.global t.gens && e.g_obj = Gen.of_object t.gens e.obj

let slot_of t key = t.hash key land t.mask

let find t key =
  probe_fault t;
  let i = slot_of t key in
  match t.slots.(i) with
  | Some (k, e) when t.equal k key ->
      if fresh t e then begin
        incr t.hits;
        Some e.value
      end
      else begin
        t.slots.(i) <- None;
        t.population <- t.population - 1;
        incr t.invalidations;
        incr t.misses;
        None
      end
  | Some _ | None ->
      incr t.misses;
      None

let add t ~obj key value =
  (* Direct-mapped, hardware-style: a collision displaces the resident
     entry rather than maintain LRU bookkeeping the 6180 never had.
     Displacement discards a decision; it can never resurrect one. *)
  let i = slot_of t key in
  if t.slots.(i) = None then t.population <- t.population + 1;
  t.slots.(i) <-
    Some (key, { value; obj; g_global = Gen.global t.gens; g_obj = Gen.of_object t.gens obj });
  incr t.insertions

let find_or_add t ~obj key compute =
  match find t key with
  | Some v -> (v, true)
  | None ->
      let v = compute () in
      add t ~obj key v;
      (v, false)

let keys t =
  Array.fold_left
    (fun acc slot ->
      match slot with Some (k, e) when fresh t e -> k :: acc | Some _ | None -> acc)
    [] t.slots

let entries t =
  Array.fold_left
    (fun acc slot ->
      match slot with
      | Some (k, e) when fresh t e -> (k, e.value) :: acc
      | Some _ | None -> acc)
    [] t.slots

let invalidate_object t obj = Gen.bump_object t.gens obj
let invalidate_all t = Gen.bump_global t.gens

let counters t =
  [
    ("hits", Obs.Counter.get t.hits);
    ("misses", Obs.Counter.get t.misses);
    ("invalidations", Obs.Counter.get t.invalidations);
    ("insertions", Obs.Counter.get t.insertions);
    ("flushes", Obs.Counter.get t.flushes);
  ]

let hit_ratio t =
  let h = Obs.Counter.get t.hits and m = Obs.Counter.get t.misses in
  if h + m = 0 then 0.0 else float_of_int h /. float_of_int (h + m)
