(* E4 — ring-crossing cost.  "For that older machine ... cross-ring
   calls were quite expensive"; on the 6180, "calls from one ring to
   another now cost no more than calls inside a ring." *)

open Multics_machine

let id = "E4"

let title = "Cross-ring call cost: H645 (software rings) vs H6180 (hardware rings)"

let paper_claim =
  "on the 645 a call to the supervisor cost much more than a call which did not change \
   protection environments; on the 6180 cross-ring calls cost no more than in-ring calls"

type row = {
  processor : string;
  in_ring_round_trip : int;
  cross_ring_round_trip : int;
  penalty : float;
  ref_assoc_hit : int;  (** one reference when the SDW is in the CAM *)
  ref_assoc_miss : int;  (** ... when the descriptor must be fetched *)
}

let measure () =
  List.map
    (fun cost ->
      {
        processor = Cost.processor_name cost.Cost.processor;
        in_ring_round_trip = Cost.round_trip_call_cost cost ~cross_ring:false;
        cross_ring_round_trip = Cost.round_trip_call_cost cost ~cross_ring:true;
        penalty = Cost.cross_ring_penalty cost;
        ref_assoc_hit = cost.Cost.memory_reference;
        ref_assoc_miss = cost.Cost.memory_reference + cost.Cost.sdw_fetch;
      })
    [ Cost.h645; Cost.h6180 ]

let table () =
  let open Multics_util.Table in
  let t =
    create
      ~title:(Printf.sprintf "%s: %s" id title)
      ~columns:
        [
          ("processor", Left);
          ("in-ring call+return", Right);
          ("cross-ring call+return", Right);
          ("penalty", Right);
          ("ref (assoc hit)", Right);
          ("ref (assoc miss)", Right);
        ]
  in
  List.iter
    (fun r ->
      add_row t
        [
          r.processor;
          string_of_int r.in_ring_round_trip;
          string_of_int r.cross_ring_round_trip;
          fmt_ratio r.penalty;
          string_of_int r.ref_assoc_hit;
          string_of_int r.ref_assoc_miss;
        ])
    (measure ());
  t

let render () = Multics_util.Table.render (table ())
