(** E19 — dense-SID mediation: one hundred seeded parity runs holding
    the compiled access-vector table ({!Multics_access.Av_table})
    pointwise equal to the structured reference monitor across ACL
    edits, label rewrites, bracket changes, flush storms and eager
    rebuilds, plus a table pricing the compilation (SIDs interned,
    cells filled, hit ratio under churn).  The [\[parity\]] verdict
    line is a CI gate: zero divergences or the build fails. *)

val id : string
val title : string
val paper_claim : string

type run_stats = {
  refs : int;
  divergences : int;
  edits : int;  (** ACL edits + bracket changes + label rewrites *)
  flushes : int;  (** flush storms + salvage-style global invalidations *)
  rebuilds : int;
}

val run_seed : seed:int -> refs:int -> run_stats
(** One randomized interleaving of references and revocations; every
    reference compares [check_access] against [check_access_fresh]. *)

val seeds : int

val parity_runs : ?jobs:int -> ?refs:int -> unit -> run_stats list
(** The 100-seed oracle, fanned out over [jobs] domains (default:
    [Par.default_jobs ()], i.e. [MULTICS_JOBS]); [refs] defaults to
    400 references per seed.  Results are reduced in seed order, so the
    output is identical at any pool size. *)

val render : unit -> string
