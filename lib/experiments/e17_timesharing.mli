(** E17 — the traffic controller under multi-user timesharing load:
    a user sweep (10 -> 10,000 sessions) on both processor models, the
    eligibility-cap thrashing knee against a fixed core budget, and the
    policy-parity check (MLF / FIFO / user-ring external must leave the
    mediation digest untouched) with the per-policy kernel-surface
    accounting. *)

val id : string
val title : string
val paper_claim : string

type sweep_row = {
  sw_users : int;
  sw_completed : int;
  sw_cycles : int;
  sw_throughput : float;
  sw_response : Multics_util.Stats.summary;
  sw_faults : int;
}

val run_sweep : cost:Multics_machine.Cost.t -> sweep_row list

type knee_row = {
  kn_cap : int;
  kn_throughput : float;
  kn_p50 : float;
  kn_p99 : float;
  kn_faults_per : float;  (** page faults per completed interaction *)
  kn_stalls : int;
}

val negotiated : int
(** The cap page control's core budget supports at the knee workload's
    working-set size ({!Multics_sched.Sched.negotiated_cap}). *)

val run_knee : unit -> knee_row list

val knee_verdict : knee_row list -> bool * string
(** [(true, line)] iff the worst over-admitted point at least doubles
    faults per interaction relative to the negotiated cap. *)

val run_parity : unit -> Multics_sched.Workload.result list
(** The same workload under MLF, FIFO and the external policy. *)

val parity_verdict : Multics_sched.Workload.result list -> bool * string
(** [(true, line)] iff every policy produced the identical mediation
    digest, audit totals and completion count. *)

val render : unit -> string
