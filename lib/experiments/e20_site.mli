(** E20 — distributed kernel sites: the 10k/100k/1M-user x 1/2/4/8-site
    fleet sweep (cross-site revocation cycles, fenced refusals), the
    hundred-seed site-count-parity oracle under drop/delay fault
    plans, and the directed partition race — a fenced site must refuse
    rather than serve a revoked Permit, and rejoin must replay the
    missed epochs.  The sweep-parity, coherence and race verdict lines
    are CI gates. *)

val id : string
val title : string
val paper_claim : string

(** {1 The fleet sweep} *)

val user_points : int list
val site_points : int list

type sweep_cell = {
  row : Multics_sched.Workload.sweep_row;
  revocation_mean : float;  (** cycles per cross-site revocation storm *)
}

val run_sweep_cell : users:int -> sites:int -> sweep_cell
(** One cell (seed 20, a revocation every 1000th user); the revocation
    bill comes from an obs-snapshot diff around the run. *)

val sweep_table : sweep_cell list -> Multics_util.Table.t

val sweep_parity_verdict : sweep_cell list -> bool * string
(** The order-preserving digest and the grant/refuse counts must be
    bit-identical across site counts at every population. *)

(** {1 The coherence-parity oracle} *)

val parity_seeds : int
val parity_site_points : int list

val parity_plans : string list
(** Recoverable plans only ([every:k], k >= 2): bounded retry always
    delivers, so no site is fenced and parity is exact. *)

val parity_spec : int -> int -> string -> Multics_sched.Workload.spec

val run_parity : unit -> int
(** Total divergent runs across seeds x plans x site counts (digest,
    audit counts or completions differing from the 1-site baseline);
    per-seed tasks fan out over the [Par] pool and reduce in seed
    order. *)

val parity_verdict : int -> bool * string

(** {1 The directed partition race} *)

type race_outcome = {
  stale_permits : int;
  fenced_refusals : int;
  rejoin_replayed : int;
  rejoin_ok : bool;
}

val run_race : unit -> race_outcome
(** Warm a remote site's Permit, partition it, revoke at the origin,
    then count what the fenced site serves before healing the link and
    replaying the missed epochs. *)

val race_verdict : race_outcome -> bool * string

val obs_table : unit -> Multics_util.Table.t
(** Per-site mediation counters aggregated fleet-wide. *)

val render : unit -> string
