(* E18 — the multiprocessor plant: scaling, connect latency, coherence.

   The paper's kernel runs on a multiprocessor 6180, and its mediation
   argument survives that configuration only because of the connect
   discipline: a descriptor mutation clears the mutating processor's
   associative memory inline, sends a connect (inter-processor
   interrupt) to every other processor, and does not return until each
   has acknowledged clearing its own.  Three measurements:

   1. A dispatch-throughput sweep over 1/2/4/8 CPUs on both processor
      cost models.  Virtual processors scale with the CPU count (the
      CPUs are the execution engines), so throughput should rise with
      CPUs — net of what the shared global lock and the connect
      traffic claw back.  The 645-style cost model pays more than
      double per connect (mailbox poll + software interrupt vs the
      6180's cioc connect fault), so its scaling curve sits lower.

   2. Connect latency: the per-broadcast cycle bill (IPIs + lost-IPI
      stalls + global-lock wait) from the [smp.connect.cycles]
      histogram, per CPU count and cost model.

   3. The coherence-parity oracle: 100 seeds x {1,2,4} CPUs must
      produce the identical mediation digest and audit totals — also
      under a plan that drops connects on the wire
      ([smp.lost_connect]) and one that storms the decision cache
      ([cache.flush]).  Timing changes, results never: a lost IPI
      stalls the sender until the target is cleared, so no CPU can
      ever replay a stale Permit. *)

open Multics_sched
module Cost = Multics_machine.Cost
module Stats = Multics_util.Stats
module Table = Multics_util.Table
module Obs = Multics_obs.Obs

let id = "E18"

let title = "multiprocessor: dispatch scaling, connect latency, coherence parity"

let paper_claim =
  "the kernel runs on a multiprocessor 6180 without weakening mediation: every descriptor \
   change synchronously clears all processors' associative memories (connect/setfaults) \
   before returning, so added CPUs buy throughput at the price of lock contention and \
   connect traffic — never at the price of a stale access decision"

let cpu_points = [ 1; 2; 4; 8 ]

(* ----- 1 + 2. the CPU sweep (throughput and connect latency) ----- *)

type sweep_row = {
  sw_cpus : int;
  sw_completed : int;
  sw_cycles : int;
  sw_throughput : float;
  sw_response : Stats.summary;
  sw_connects : int;
  sw_connect_mean : float;
  sw_lock_contended : int;
}

(* Compute-heavy interactive load: enough sessions to keep every
   engine busy, little think time, so the sweep measures the engines
   and their coherence overhead rather than terminal idling. *)
let sweep_spec ~cost ~cpus =
  {
    Workload.default with
    seed = 18;
    users = 16;
    interactions = 2;
    think = 1_000;
    service = 3_000;
    working_set = 3;
    passes = 2;
    batch = 2;
    batch_chunks = 3;
    batch_chunk = 2_000;
    daemons = 1;
    gate_calls = true;
    vps = cpus;
    (* the CPUs are the execution engines *)
    cpus;
    cost;
  }

(* The connect bill and lock contention live in the global obs
   registry; a snapshot diff around the run isolates this run's
   share. *)
let run_sweep_point ~cost cpus =
  let before = Obs.Snapshot.capture () in
  let r = Workload.run (sweep_spec ~cost ~cpus) in
  let after = Obs.Snapshot.capture () in
  let d = Obs.Snapshot.diff ~before ~after in
  let counter name = try List.assoc name d.Obs.Snapshot.counters with Not_found -> 0 in
  let connects, connect_mean =
    match List.assoc_opt "smp.connect.cycles" d.Obs.Snapshot.histograms with
    | Some h when h.Obs.Snapshot.count > 0 ->
        (h.Obs.Snapshot.count, float_of_int h.Obs.Snapshot.sum /. float_of_int h.Obs.Snapshot.count)
    | _ -> (0, 0.0)
  in
  {
    sw_cpus = cpus;
    sw_completed = r.Workload.r_completed;
    sw_cycles = r.Workload.r_cycles;
    sw_throughput = r.Workload.r_throughput;
    sw_response = r.Workload.r_response;
    sw_connects = connects;
    sw_connect_mean = connect_mean;
    sw_lock_contended = counter "smp.lock.contended";
  }

let run_sweep ~cost = Multics_par.Par.map (run_sweep_point ~cost) cpu_points

let sweep_table ~label rows =
  let t =
    Table.create
      ~title:(Printf.sprintf "%s: CPU sweep (%s)" id label)
      ~columns:
        [
          ("cpus", Table.Right);
          ("done", Table.Right);
          ("cycles", Table.Right);
          ("inter/Mcyc", Table.Right);
          ("resp p99", Table.Right);
          ("connects", Table.Right);
          ("connect mean", Table.Right);
          ("lock contended", Table.Right);
        ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          string_of_int r.sw_cpus;
          string_of_int r.sw_completed;
          string_of_int r.sw_cycles;
          Table.fmt_float ~decimals:2 r.sw_throughput;
          Table.fmt_float ~decimals:0 r.sw_response.Stats.p99;
          string_of_int r.sw_connects;
          Table.fmt_float ~decimals:0 r.sw_connect_mean;
          string_of_int r.sw_lock_contended;
        ])
    rows;
  t

(* The scaling verdict CI greps for: dispatch throughput must rise
   monotonically from 1 to 4 CPUs on the 6180 cost model (8 CPUs may
   bend under lock contention — that is the lesson, not a failure). *)
let scaling_verdict rows =
  let at cpus = List.find (fun r -> r.sw_cpus = cpus) rows in
  let t1 = (at 1).sw_throughput and t2 = (at 2).sw_throughput and t4 = (at 4).sw_throughput in
  ( t1 < t2 && t2 < t4,
    Printf.sprintf
      "dispatch throughput scales 1->4 CPUs on H6180: %.2f -> %.2f -> %.2f inter/Mcycle"
      t1 t2 t4 )

(* ----- 3. the coherence-parity oracle ----- *)

let parity_seeds = 100

let parity_cpu_points = [ 1; 2; 4 ]

let parity_plans = [ ""; "smp.lost_connect=every:2"; "cache.flush=every:5" ]

let parity_spec seed cpus fault_spec =
  {
    Workload.default with
    seed;
    users = 3;
    interactions = 2;
    think = 2_000;
    service = 300;
    working_set = 2;
    passes = 2;
    batch = 1;
    batch_chunks = 2;
    batch_chunk = 500;
    daemons = 1;
    vps = 4;
    (* fixed while CPUs vary: same schedule-level parallelism *)
    cpus;
    fault_spec;
  }

(* Returns the number of (seed, plan, cpus) triples whose mediation
   diverged from the 1-CPU run. *)
let run_parity () =
  (* One task per seed (each covers every plan × CPU-count pair), fanned
     out over domains; per-seed divergence counts are summed in seed
     order, so the total — and the verdict line — never depends on the
     pool size. *)
  let per_seed =
    Multics_par.Par.run_seeds parity_seeds (fun seed ->
        let divergences = ref 0 in
        List.iter
          (fun plan ->
            let base = Workload.run (parity_spec seed 1 plan) in
            List.iter
              (fun cpus ->
                if cpus > 1 then begin
                  let r = Workload.run (parity_spec seed cpus plan) in
                  if
                    r.Workload.r_signature <> base.Workload.r_signature
                    || r.Workload.r_audit_granted <> base.Workload.r_audit_granted
                    || r.Workload.r_audit_refused <> base.Workload.r_audit_refused
                    || r.Workload.r_completed <> base.Workload.r_completed
                  then incr divergences
                end)
              parity_cpu_points)
          parity_plans;
        !divergences)
  in
  List.fold_left ( + ) 0 per_seed

let parity_verdict divergences =
  let cpus_label =
    String.concat "," (List.map string_of_int parity_cpu_points)
  in
  if divergences = 0 then
    ( true,
      Printf.sprintf
        "mediation is CPU-count-invariant: %d seeds x {%s} CPUs, %d fault plans, 0 divergences"
        parity_seeds cpus_label (List.length parity_plans) )
  else
    ( false,
      Printf.sprintf "COHERENCE BROKEN: %d divergent runs (stale descriptors reached mediation)"
        divergences )

let render () =
  let buf = Buffer.create 4096 in
  let sweep645 = run_sweep ~cost:Cost.h645 in
  let sweep6180 = run_sweep ~cost:Cost.h6180 in
  Buffer.add_string buf (Table.render (sweep_table ~label:"H645" sweep645));
  Buffer.add_string buf "\n\n";
  Buffer.add_string buf (Table.render (sweep_table ~label:"H6180" sweep6180));
  let scale_ok, scale_line = scaling_verdict sweep6180 in
  Buffer.add_string buf
    (Printf.sprintf "\n%s %s\n\n" (if scale_ok then "[scaling]" else "[NO SCALING]") scale_line);
  let divergences = run_parity () in
  let par_ok, par_line = parity_verdict divergences in
  Buffer.add_string buf
    (Printf.sprintf "%s %s\n" (if par_ok then "[coherence]" else "[COHERENCE BROKEN]") par_line);
  Buffer.contents buf
