(** The experiment registry: E1..E12 plus the ablations, addressable by
    id. *)

type experiment = {
  id : string;
  title : string;
  paper_claim : string;
  render : unit -> string;
}

val all : experiment list

val find : string -> experiment option
(** Case-insensitive id lookup. *)

val ids : string list

val render_one : experiment -> string
val render_all : unit -> string

(** The harness's command line as a reusable Cmdliner term:
    [bin/experiments.exe] evaluates it, and the test suite proves every
    registered id parses (with and without [--stats]) without rendering
    anything. *)
module Cli : sig
  type selection = { list_only : bool; stats : bool; sel_ids : string list }

  val term : selection Cmdliner.Term.t
  val info : Cmdliner.Cmd.info

  val parse : string array -> (selection, string) result
  (** Evaluate the term against an argv (argv.(0) is the program
      name). *)
end
