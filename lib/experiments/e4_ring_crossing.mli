(** E4 — cross-ring call cost on the 645 (software rings) vs the 6180
    (hardware rings). *)

val id : string
val title : string
val paper_claim : string

type row = {
  processor : string;
  in_ring_round_trip : int;
  cross_ring_round_trip : int;
  penalty : float;
  ref_assoc_hit : int;  (** one reference when the SDW is in the CAM *)
  ref_assoc_miss : int;  (** ... when the descriptor must be fetched *)
}

val measure : unit -> row list
val table : unit -> Multics_util.Table.t
val render : unit -> string
