(* E19 — dense-SID mediation: the compiled access-vector table against
   the structured reference monitor.

   The redesigned mediation path interns every subject and object into
   a dense SID space and compiles Policy x ring brackets into a flat
   2-D table of access-vector bits ({!Multics_access.Av_table}); a
   reference Permits by two array reads and a bit test.  That is only
   sound if the table NEVER disagrees with the structured verdict —
   across ACL edits, label rewrites, bracket changes, whole-cache
   flush storms and post-salvage invalidation, all of which revoke
   through the same epoch generations the AVC uses.

   This experiment is the parity oracle: one hundred seeded runs, each
   a randomized interleaving of references and revocations over a
   population of subjects spanning clearances, compartments, rings and
   the trusted bit.  Every reference asks BOTH paths — the compiled
   table ([check_access]) and the scratch recomputation
   ([check_access_fresh]) — and any disagreement, in verdict or in
   refusal detail, is a divergence.  The verdict line is a CI gate:
   the run must report zero.

   A second table prices the compilation itself: interned subjects and
   objects, cells an eager rebuild fills, and the hit ratio the churn
   left behind — the flat table's analogue of E16's AVC readings. *)

open Multics_access
open Multics_fs
open Multics_machine

let id = "E19"

let title = "Dense-SID access-vector table: parity with structured mediation under churn"

let paper_claim =
  "mediation on every reference is affordable only if the common case is a table lookup; \
   the compiled access decision must be indistinguishable from the structured one, \
   including immediately after any revocation"

(* Deterministic multiplicative LCG (Park–Miller), as in E16, so the
   recorded tables reproduce bit-for-bit. *)
let lcg seed =
  let state = ref (if seed <= 0 then 1 else seed) in
  fun bound ->
    state := !state * 48271 mod 0x7fffffff;
    !state mod bound

let operator =
  Policy.subject ~trusted:true
    ~principal:(Principal.make ~person:"Initializer" ~project:"SysDaemon" ~tag:"z")
    ~clearance:(Label.system_high []) ~ring:(Ring.of_int 1) ()

(* A population of subjects spanning the dimensions a SID must keep
   distinct: level, compartments, ring, and the trusted bit.  Fresh
   records per run so the per-record SID memo is exercised from cold. *)
let subject_pool () =
  let mk ?(trusted = false) person level compartments ring =
    Policy.subject ~trusted
      ~principal:(Principal.make ~person ~project:"Parity" ~tag:"a")
      ~clearance:(Label.make level compartments) ~ring:(Ring.of_int ring) ()
  in
  [|
    mk "Unc4" Label.Unclassified [] 4;
    mk "Con4" Label.Confidential [] 4;
    mk "Sec4" Label.Secret [ "crypto" ] 4;
    mk "Sec5" Label.Secret [ "crypto"; "nato" ] 5;
    mk "Top4" Label.Top_secret [ "crypto"; "nato" ] 4;
    mk "Top1" Label.Top_secret [ "crypto" ] 1;
    mk ~trusted:true "Daemon1" Label.Secret [] 1;
    mk "Unc7" Label.Unclassified [] 7;
  |]

let labels =
  [|
    Label.unclassified;
    Label.make Label.Confidential [];
    Label.make Label.Secret [ "crypto" ];
    Label.make Label.Secret [ "nato" ];
    Label.make Label.Top_secret [ "crypto"; "nato" ];
  |]

let acls =
  [|
    Acl.of_strings [ ("*.Parity.*", "rw"); ("Initializer.*.*", "rew") ];
    Acl.of_strings [ ("*.Parity.*", "r"); ("Initializer.*.*", "rew") ];
    Acl.of_strings [ ("Sec4.Parity.*", "rw"); ("Initializer.*.*", "rew") ];
    Acl.of_strings [ ("Initializer.*.*", "rew") ];
    Acl.of_strings [ ("*.*.*", "re"); ("Initializer.*.*", "rew") ];
  |]

let bracket_pool =
  [|
    Brackets.user_data;
    Brackets.user_procedure;
    Brackets.make ~r1:4 ~r2:5 ~r3:5;
    Brackets.make ~r1:1 ~r2:1 ~r3:1;
  |]

let modes = [| Mode.r; Mode.w; Mode.rw; Mode.e; Mode.re |]

type run_stats = {
  refs : int;
  divergences : int;
  edits : int;  (** ACL edits + bracket changes + label rewrites *)
  flushes : int;  (** flush storms + salvage-style global invalidations *)
  rebuilds : int;
}

let run_seed ~seed ~refs =
  let h = Hierarchy.create () in
  let rand = lcg (1 + seed) in
  let subjects = subject_pool () in
  let objects = 24 in
  let uids =
    Array.init objects (fun i ->
        match
          Hierarchy.create_segment h ~subject:operator ~dir:Uid.root
            ~name:(Printf.sprintf "seg_%02d" i)
            ~acl:acls.(rand (Array.length acls))
            ~brackets:bracket_pool.(rand (Array.length bracket_pool))
            ~label:labels.(rand (Array.length labels))
        with
        | Ok uid -> uid
        | Error e -> invalid_arg ("E19: create_segment: " ^ Hierarchy.error_to_string e))
  in
  let divergences = ref 0 and edits = ref 0 and flushes = ref 0 and rebuilds = ref 0 in
  for _ = 1 to refs do
    (match rand 20 with
    | 0 ->
        (* ACL edit: revocation through the per-object generation. *)
        let uid = uids.(rand objects) in
        (match
           Hierarchy.set_acl h ~subject:operator ~uid ~acl:acls.(rand (Array.length acls))
         with
        | Ok () -> incr edits
        | Error e -> invalid_arg ("E19: set_acl: " ^ Hierarchy.error_to_string e))
    | 1 ->
        (* Label rewrite: the security administrator's upgrade path. *)
        let uid = uids.(rand objects) in
        if Hierarchy.raw_set_label h ~uid ~label:labels.(rand (Array.length labels)) then
          incr edits
    | 2 ->
        (* Bracket change: the ring dimension of the compiled vector. *)
        let uid = uids.(rand objects) in
        (match
           Hierarchy.set_brackets h ~subject:operator ~uid
             ~brackets:bracket_pool.(rand (Array.length bracket_pool))
         with
        | Ok () -> incr edits
        | Error e -> invalid_arg ("E19: set_brackets: " ^ Hierarchy.error_to_string e))
    | 3 ->
        (* Flush storm (storage loss) or salvage-style global bump. *)
        if rand 2 = 0 then Hierarchy.flush_cached_verdicts h
        else Hierarchy.invalidate_cached_verdicts h;
        incr flushes
    | 4 when rand 8 = 0 ->
        (* An eager recompile mid-churn must also be invisible. *)
        ignore (Hierarchy.rebuild_av_table h);
        incr rebuilds
    | _ -> ());
    let subject = subjects.(rand (Array.length subjects)) in
    let uid = uids.(rand objects) in
    let requested = modes.(rand (Array.length modes)) in
    let compiled = Hierarchy.check_access h ~subject ~uid ~requested in
    let structured = Hierarchy.check_access_fresh h ~subject ~uid ~requested in
    if compiled <> structured then incr divergences
  done;
  { refs; divergences = !divergences; edits = !edits; flushes = !flushes; rebuilds = !rebuilds }

let seeds = 100

(* Seeds are independent labeled-PRNG streams, so the oracle fans out
   over domains; results come back in seed order, so the table and
   verdict line are byte-identical at any pool size. *)
let parity_runs ?jobs ?(refs = 400) () =
  Multics_par.Par.run_seeds ?jobs seeds (fun seed -> run_seed ~seed ~refs)

(* ----- The compilation-cost table ----- *)

type cost_row = {
  cr_workload : string;
  cr_subjects : int;  (** subject SIDs interned *)
  cr_objects : int;
  cr_cells : int;  (** cells an eager rebuild fills *)
  cr_hit_ratio : float;
  cr_invalidations : int;
}

let counter_of stats name = try List.assoc name stats with Not_found -> 0

let cost_run ~name ~subjects:nsubj ~objects ~refs ~edit_every =
  let h = Hierarchy.create () in
  let rand = lcg (23 + objects + edit_every) in
  let pool = subject_pool () in
  let subjects = Array.sub pool 0 (min nsubj (Array.length pool)) in
  let uids =
    Array.init objects (fun i ->
        match
          Hierarchy.create_segment h ~subject:operator ~dir:Uid.root
            ~name:(Printf.sprintf "seg_%03d" i) ~acl:acls.(0) ~label:Label.unclassified
        with
        | Ok uid -> uid
        | Error e -> invalid_arg ("E19: create_segment: " ^ Hierarchy.error_to_string e))
  in
  let before = Hierarchy.cache_stats h in
  for i = 1 to refs do
    if edit_every > 0 && i mod edit_every = 0 then begin
      match
        Hierarchy.set_acl h ~subject:operator ~uid:(uids.(rand objects))
          ~acl:acls.(rand (Array.length acls))
      with
      | Ok () -> ()
      | Error e -> invalid_arg ("E19: set_acl: " ^ Hierarchy.error_to_string e)
    end;
    let subject = subjects.(rand (Array.length subjects)) in
    ignore (Hierarchy.check_access h ~subject ~uid:(uids.(rand objects)) ~requested:Mode.r)
  done;
  let after = Hierarchy.cache_stats h in
  let delta name = counter_of after name - counter_of before name in
  let hits = delta "hits" and misses = delta "misses" in
  let cells = Hierarchy.rebuild_av_table h in
  {
    cr_workload = name;
    cr_subjects = Av_table.subject_count (Hierarchy.av_table h);
    cr_objects = objects;
    cr_cells = cells;
    cr_hit_ratio =
      (if hits + misses = 0 then 0.0 else float_of_int hits /. float_of_int (hits + misses));
    cr_invalidations = delta "invalidations";
  }

let cost_rows () =
  [
    cost_run ~name:"2 subjects x 64 objects, no edits" ~subjects:2 ~objects:64 ~refs:20_000
      ~edit_every:0;
    cost_run ~name:"8 subjects x 64 objects, no edits" ~subjects:8 ~objects:64 ~refs:20_000
      ~edit_every:0;
    cost_run ~name:"8 subjects x 256 objects, edit storm" ~subjects:8 ~objects:256 ~refs:20_000
      ~edit_every:8;
  ]

(* ----- Rendering ----- *)

let parity_table runs =
  let open Multics_util.Table in
  let t =
    create
      ~title:(Printf.sprintf "%s: %s (aggregate over %d seeds)" id title seeds)
      ~columns:
        [
          ("", Left);
          ("refs", Right);
          ("ACL/label/bracket edits", Right);
          ("flush storms", Right);
          ("eager rebuilds", Right);
          ("divergences", Right);
        ]
  in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 runs in
  add_row t
    [
      "total";
      string_of_int (sum (fun r -> r.refs));
      string_of_int (sum (fun r -> r.edits));
      string_of_int (sum (fun r -> r.flushes));
      string_of_int (sum (fun r -> r.rebuilds));
      string_of_int (sum (fun r -> r.divergences));
    ];
  t

let cost_table rows =
  let open Multics_util.Table in
  let t =
    create
      ~title:(Printf.sprintf "%s: compiled-table population and hit ratio" id)
      ~columns:
        [
          ("workload", Left);
          ("subject SIDs", Right);
          ("objects", Right);
          ("rebuild cells", Right);
          ("hit ratio", Right);
          ("inval", Right);
        ]
  in
  List.iter
    (fun r ->
      add_row t
        [
          r.cr_workload;
          string_of_int r.cr_subjects;
          string_of_int r.cr_objects;
          string_of_int r.cr_cells;
          fmt_pct r.cr_hit_ratio;
          string_of_int r.cr_invalidations;
        ])
    rows;
  t

let render () =
  let runs = parity_runs () in
  let total_div = List.fold_left (fun acc r -> acc + r.divergences) 0 runs in
  let par_ok = total_div = 0 in
  let par_line =
    Printf.sprintf
      "compiled access-vector table matches structured mediation: %d seeds, %d divergences"
      seeds total_div
  in
  String.concat "\n"
    [
      Multics_util.Table.render (parity_table runs);
      "";
      Multics_util.Table.render (cost_table (cost_rows ()));
      "";
      Printf.sprintf "%s %s" (if par_ok then "[parity]" else "[PARITY BROKEN]") par_line;
    ]
