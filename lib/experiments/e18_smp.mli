(** E18 — the multiprocessor plant: the 1/2/4/8-CPU dispatch sweep on
    both cost models (throughput, connect latency, lock contention),
    and the coherence-parity oracle — one hundred seeded runs x
    {1,2,4} CPUs x three fault plans, holding the mediation verdicts
    and audit digest CPU-count-invariant even under dropped connects
    and cache-flush storms.  The [\[scaling\]] and [\[coherence\]]
    verdict lines are CI gates. *)

val id : string
val title : string
val paper_claim : string

val cpu_points : int list
(** The sweep's CPU counts: 1, 2, 4, 8. *)

type sweep_row = {
  sw_cpus : int;
  sw_completed : int;  (** interactions completed *)
  sw_cycles : int;  (** simulated cycles consumed *)
  sw_throughput : float;  (** interactions per megacycle *)
  sw_response : Multics_util.Stats.summary;  (** interactive response times *)
  sw_connects : int;  (** connect broadcasts observed *)
  sw_connect_mean : float;  (** mean broadcast bill in cycles *)
  sw_lock_contended : int;  (** global-lock acquisitions that waited *)
}

val sweep_spec : cost:Multics_machine.Cost.t -> cpus:int -> Multics_sched.Workload.spec
(** The compute-heavy interactive load driving the sweep: enough
    sessions to keep every engine busy, little think time. *)

val run_sweep_point : cost:Multics_machine.Cost.t -> int -> sweep_row
(** One cell of the sweep; the connect bill and lock contention come
    from an obs-snapshot diff around the run. *)

val run_sweep : cost:Multics_machine.Cost.t -> sweep_row list
(** Every {!cpu_points} cell, fanned out over the [Par] pool. *)

val sweep_table : label:string -> sweep_row list -> Multics_util.Table.t

val scaling_verdict : sweep_row list -> bool * string
(** Dispatch throughput must rise monotonically from 1 to 4 CPUs on
    the 6180 cost model (8 may bend under lock contention — that is
    the lesson, not a failure). *)

(** {1 The coherence-parity oracle} *)

val parity_seeds : int
val parity_cpu_points : int list
val parity_plans : string list

val parity_spec : int -> int -> string -> Multics_sched.Workload.spec

val run_parity : unit -> int
(** Total divergent runs across seeds x plans x CPU counts (audit
    digest, grant/refuse counts or completions differing from the
    1-CPU baseline); per-seed tasks fan out over the [Par] pool and
    reduce in seed order. *)

val parity_verdict : int -> bool * string

val render : unit -> string
