(* E15 — fail-secure under deterministic fault injection.

   The paper's engineering argument for a certifiable kernel rests on
   the system failing CLOSED: whatever goes wrong inside the kernel —
   parity errors, device transients, aborted gate calls, crashed
   processes — the worst outcome for security is a refusal, never a
   grant; and after a crash the salvager restores a hierarchy every
   descriptor of which agrees with the access records.

   Two legs, both driven by seeded fault plans (lib/fault):

   - the GATE leg runs a randomized two-user workload through the
     typed dispatch API under a random gate.deny/gate.abort plan,
     checks every granted content access against the recomputed
     policy (invariant 1), then salvages and checks every surviving
     descriptor against the reference monitor plus the standing
     attack probe (invariant 2);

   - the VM leg runs page-fault traffic plus the backup daemon under
     storage/tape/crash faults and checks that page conservation and
     the vulnerable-page accounting survive.

   The injected/denied/salvaged totals come from the lib/obs global
   registry, the same counters the shell's [stats] command reads. *)

open Multics_access
open Multics_fs
open Multics_kernel
open Multics_mm
open Multics_proc
open Multics_vm
module Call = Api.Call
module Fault = Multics_fault.Fault
module Prng = Multics_util.Prng
module Obs = Multics_obs.Obs

let id = "E15"

let title = "Fail-secure: randomized workloads under seeded fault plans"

let paper_claim =
  "a security kernel must fail closed: no internal fault may produce an access the \
   reference monitor would refuse, and after a crash the salvager restores a hierarchy \
   consistent with the access records"

(* ----- Gate leg ----- *)

type gate_outcome = {
  seed : int;
  plan_spec : string;
  ops : int;
  granted : int;
  refused : int;
  injected : int;
  journaled : int;  (** gate aborts recorded for the salvager *)
  violations : int;  (** invariant 1: granted accesses policy would refuse *)
  probe_leaks : int;  (** the standing attack probe succeeded mid-faults *)
  report : Salvager.report;
  post_salvage_bad : int;  (** invariant 2: descriptors disagreeing with policy *)
  post_salvage_probe_leaks : int;
}

let fail_secure (o : gate_outcome) =
  o.violations = 0 && o.probe_leaks = 0 && o.post_salvage_bad = 0
  && o.post_salvage_probe_leaks = 0
  && o.report.Salvager.quota_ok

(* A random plan always attacks the gate layer; the other sites ride
   along when the coin lands that way (they are exercised fully by the
   VM leg). *)
let random_gate_plan ~seed =
  let prng = Prng.create_labeled ~seed ~label:"e15.plan" in
  let sched () =
    match Prng.int prng 3 with
    | 0 -> Fault.Nth (1 + Prng.int prng 12)
    | 1 -> Fault.Every (2 + Prng.int prng 6)
    | _ -> Fault.Probability { num = 1; den = 3 + Prng.int prng 6 }
  in
  let rules =
    [ (Fault.Gate_abort, sched ()) ]
    @ (if Prng.bool prng then [ (Fault.Gate_deny, sched ()) ] else [])
    @ if Prng.bool prng then [ (Fault.Device_transient, sched ()) ] else []
  in
  Fault.Plan.make ~seed rules

let reply what = function
  | Ok reply -> reply
  | Error e -> failwith (Printf.sprintf "E15 %s: %s" what (Api.error_to_string e))

let expect_done what response = match reply what response with
  | Call.Done -> ()
  | _ -> failwith (Printf.sprintf "E15 %s: unexpected reply shape" what)

let expect_segno what response = match reply what response with
  | Call.Segno segno -> segno
  | _ -> failwith (Printf.sprintf "E15 %s: unexpected reply shape" what)

let boot () =
  let system = System.create Config.kernel_6180 in
  ignore
    (System.add_account system ~person:"Alice" ~project:"Dev" ~password:"pw"
       ~clearance:Label.unclassified);
  ignore
    (System.add_account system ~person:"Bob" ~project:"Dev" ~password:"pw"
       ~clearance:Label.unclassified);
  let login person =
    match System.login system ~person ~project:"Dev" ~password:"pw" with
    | Ok handle -> handle
    | Error e -> failwith (System.login_error_to_string e)
  in
  let alice = login "Alice" in
  let bob = login "Bob" in
  (system, alice, bob)

let home_segno system handle =
  match System.proc system handle with
  | Some p -> System.install_known system p ~uid:p.System.working_dir
  | None -> failwith "E15: handle vanished"

(* The standing attack probe: Bob tries to read Alice's private
   segment.  Policy refuses him fault-free (owner-only ACL), so ANY
   success, under any fault plan, is a fail-open leak. *)
let probe_leaks_once system ~bob ~alice_home_uid =
  let dir_segno =
    match System.proc system bob with
    | Some p -> System.install_known system p ~uid:alice_home_uid
    | None -> failwith "E15: bob vanished"
  in
  match Call.dispatch system ~handle:bob (Call.Initiate { dir_segno; name = "private" }) with
  | Error _ -> false
  | Ok (Call.Segno segno) -> (
      match Call.dispatch system ~handle:bob (Call.Read_word { segno; offset = 0 }) with
      | Ok _ -> true
      | Error _ -> false)
  | Ok _ -> false

(* Invariant 1 oracle: a granted content access is re-validated
   against the policy recomputed from ACL x label x brackets — not
   against the cached SDW the grant came from. *)
let oracle_refuses system handle segno ~write =
  match System.proc system handle with
  | None -> true
  | Some p -> (
      match Kst.uid_of_segno p.System.kst segno with
      | Error _ -> true
      | Ok uid ->
          let m =
            Hierarchy.effective_mode (System.hierarchy system) ~subject:(System.subject_of p)
              ~uid
          in
          not (if write then m.Multics_machine.Mode.write else m.Multics_machine.Mode.read))

let sdw_disagrees installed fresh =
  let open Multics_machine in
  (not (Mode.equal (Sdw.mode installed) (Sdw.mode fresh)))
  || (not (Brackets.equal (Sdw.brackets installed) (Sdw.brackets fresh)))
  || Sdw.gate_bound installed <> Sdw.gate_bound fresh

(* Invariant 2 sweep: every installed descriptor in every surviving
   process must equal what the reference monitor computes fresh. *)
let descriptor_disagreements system =
  let hierarchy = System.hierarchy system in
  List.fold_left
    (fun bad handle ->
      match System.proc system handle with
      | None -> bad
      | Some p ->
          let subject = System.subject_of p in
          List.fold_left
            (fun bad segno ->
              match (Kst.sdw_of p.System.kst segno, Kst.uid_of_segno p.System.kst segno) with
              | Some installed, Ok uid -> (
                  match Hierarchy.sdw_for hierarchy ~subject ~uid with
                  | Some fresh -> if sdw_disagrees installed fresh then bad + 1 else bad
                  | None -> bad + 1)
              | _, _ -> bad)
            bad
            (Kst.known_segnos p.System.kst))
    0 (System.handles system)

let owner_only person = Acl.of_strings [ (Printf.sprintf "%s.Dev.*" person, "rew") ]

let run_gate_pair ?(ops = 40) ~seed () =
  let system, alice, bob = boot () in
  let alice_home = home_segno system alice in
  let bob_home = home_segno system bob in
  let alice_home_uid =
    match System.proc system alice with
    | Some p -> p.System.working_dir
    | None -> failwith "E15: alice vanished"
  in
  (* Fault-free setup: the probe target exists before any plan runs. *)
  let secret =
    expect_segno "create private"
      (Call.dispatch system ~handle:alice
         (Call.Create_segment
            {
              dir_segno = alice_home;
              name = "private";
              acl = owner_only "Alice";
              label = Label.unclassified;
              brackets = None;
            }))
  in
  expect_done "seed private"
    (Call.dispatch system ~handle:alice (Call.Write_word { segno = secret; offset = 0; value = 1975 }));
  assert (not (probe_leaks_once system ~bob ~alice_home_uid));
  (* Install the plan through the gate itself (round-trips the spec). *)
  let plan = random_gate_plan ~seed in
  let plan_spec = Fault.Plan.to_string plan in
  expect_done "install plan"
    (Call.dispatch system ~handle:alice (Call.Set_fault_plan { seed; spec = plan_spec }));
  let prng = Prng.create_labeled ~seed ~label:"e15.workload" in
  let created = ref [] in
  (* (owner handle, home segno of owner, name, segno) *)
  let granted = ref 0 and refused = ref 0 and violations = ref 0 and probe_leaks = ref 0 in
  let note = function Ok _ -> incr granted | Error _ -> incr refused in
  for i = 1 to ops do
    match Prng.int prng 6 with
    | 0 ->
        let owner, home, person =
          if Prng.bool prng then (alice, alice_home, "Alice") else (bob, bob_home, "Bob")
        in
        let name = Printf.sprintf "s%d" i in
        let acl =
          if Prng.bool prng then owner_only person
          else Acl.add_string (owner_only person) ~pattern:"*.Dev.*" ~mode:"r"
        in
        let result =
          Call.dispatch system ~handle:owner
            (Call.Create_segment
               { dir_segno = home; name; acl; label = Label.unclassified; brackets = None })
        in
        note result;
        (match result with
        | Ok (Call.Segno segno) -> created := (owner, home, name, segno) :: !created
        | Ok _ | Error _ -> ())
    | 1 -> (
        match !created with
        | [] -> ()
        | segs ->
            let owner, _, _, segno = Prng.choose prng segs in
            let result =
              Call.dispatch system ~handle:owner
                (Call.Write_word { segno; offset = Prng.int prng 4; value = i })
            in
            note result;
            if Result.is_ok result && oracle_refuses system owner segno ~write:true then
              incr violations)
    | 2 -> (
        match !created with
        | [] -> ()
        | segs ->
            let owner, _, _, segno = Prng.choose prng segs in
            let result =
              Call.dispatch system ~handle:owner
                (Call.Read_word { segno; offset = Prng.int prng 4 })
            in
            note result;
            if Result.is_ok result && oracle_refuses system owner segno ~write:false then
              incr violations)
    | 3 -> if probe_leaks_once system ~bob ~alice_home_uid then incr probe_leaks
    | 4 -> (
        match !created with
        | [] -> ()
        | segs ->
            let owner, _, _, segno = Prng.choose prng segs in
            let person = if owner = alice then "Alice" else "Bob" in
            let acl =
              if Prng.bool prng then owner_only person
              else Acl.add_string (owner_only person) ~pattern:"*.Dev.*" ~mode:"r"
            in
            note (Call.dispatch system ~handle:owner (Call.Set_acl { segno; acl })))
    | _ -> (
        match !created with
        | [] -> ()
        | segs ->
            let ((owner, home, name, _segno) as seg) = Prng.choose prng segs in
            let result =
              Call.dispatch system ~handle:owner (Call.Delete_entry { dir_segno = home; name })
            in
            note result;
            if Result.is_ok result then created := List.filter (fun s -> s <> seg) !created)
  done;
  let injected =
    match System.faults system with Some inj -> Fault.Injector.injected inj | None -> 0
  in
  let journaled = List.length (System.crash_journal system) in
  (* Crash over: clear the plan, then salvage — the invariant-2 sweep
     must hold without fault noise masking a bad descriptor. *)
  expect_done "clear plan" (Call.dispatch system ~handle:alice Call.Clear_faults);
  let report =
    match reply "salvage" (Call.dispatch system ~handle:alice Call.Salvage) with
    | Call.Salvaged report -> report
    | _ -> failwith "E15 salvage: unexpected reply shape"
  in
  let post_salvage_bad = descriptor_disagreements system in
  let post_salvage_probe_leaks =
    if probe_leaks_once system ~bob ~alice_home_uid then 1 else 0
  in
  {
    seed;
    plan_spec;
    ops;
    granted = !granted;
    refused = !refused;
    injected;
    journaled;
    violations = !violations;
    probe_leaks = !probe_leaks;
    report;
    post_salvage_bad;
    post_salvage_probe_leaks;
  }

(* ----- VM leg ----- *)

type vm_outcome = {
  vm_seed : int;
  vm_injected : int;
  vm_retries : int;
  vm_giveups : int;
  tape_errors : int;
  vulnerable : int;
  crashed_procs : int;
  conservation_ok : bool;
}

let run_vm_pair ~seed () =
  let sim = Sim.create ~cost:Multics_machine.Cost.h6180 ~virtual_processors:4 in
  let mem = Memory.create ~cost:Multics_machine.Cost.h6180 ~core:4 ~bulk:8 ~disk:64 in
  let inj =
    Fault.Injector.create
      (Fault.Plan.make ~seed
         [
           (Fault.Page_read, Fault.Every 3);
           (Fault.Page_write, Fault.Nth 2);
           (Fault.Evict, Fault.Every 4);
           (Fault.Backup_tape, Fault.Probability { num = 1; den = 3 });
           (Fault.Proc_crash, Fault.Nth 70);
         ])
  in
  Sim.set_faults sim (Some inj);
  let pc = Page_control.create ~faults:inj sim ~mem ~discipline:Page_control.Sequential in
  let backup = Backup.start_exn ~faults:inj ~period:40_000 ~sweeps:3 sim ~mem in
  let prng = Prng.create_labeled ~seed ~label:"e15.vm" in
  for w = 0 to 1 do
    ignore
      (Sim.spawn sim
         ~name:(Printf.sprintf "e15.worker%d" w)
         (fun pid ->
           for i = 1 to 60 do
             let page = Page_id.make ~seg_uid:(100 + w) ~page_no:(Prng.int prng 6) in
             ignore (Page_control.reference ~write:(i mod 2 = 0) pc ~pid ~page)
           done))
  done;
  Sim.run sim;
  let crashed =
    List.length
      (List.filter
         (fun pid ->
           match Sim.failure_of sim pid with
           | Some text ->
               (* substring match: the exception renders module-qualified *)
               let needle = "Process_crashed" in
               let rec find i =
                 i + String.length needle <= String.length text
                 && (String.sub text i (String.length needle) = needle || find (i + 1))
               in
               find 0
           | None -> false)
         (Sim.processes sim))
  in
  {
    vm_seed = seed;
    vm_injected = Fault.Injector.injected inj;
    vm_retries = Fault.Injector.retries inj;
    vm_giveups = Fault.Injector.giveups inj;
    tape_errors = Backup.tape_errors backup;
    vulnerable = List.length (Backup.vulnerable_pages backup);
    crashed_procs = crashed;
    conservation_ok = Memory.check_conservation mem;
  }

(* ----- Rendering ----- *)

let gate_seeds = [ 11; 23; 37; 41; 59; 67; 73; 89 ]

let vm_seeds = [ 5; 17 ]

let gate_table outcomes =
  let open Multics_util.Table in
  let t =
    create
      ~title:(Printf.sprintf "%s: %s (gate leg)" id title)
      ~columns:
        [
          ("seed", Right);
          ("plan", Left);
          ("granted", Right);
          ("refused", Right);
          ("injected", Right);
          ("journaled", Right);
          ("rolled back", Right);
          ("repaired", Right);
          ("fail-secure", Left);
        ]
  in
  List.iter
    (fun o ->
      add_row t
        [
          string_of_int o.seed;
          o.plan_spec;
          string_of_int o.granted;
          string_of_int o.refused;
          string_of_int o.injected;
          string_of_int o.journaled;
          string_of_int o.report.Salvager.rolled_back;
          string_of_int o.report.Salvager.descriptors_repaired;
          (if fail_secure o then "yes" else "NO — FAILED OPEN");
        ])
    outcomes;
  t

let vm_table outcomes =
  let open Multics_util.Table in
  let t =
    create ~title:(Printf.sprintf "%s: storage/tape/crash faults (VM leg)" id)
      ~columns:
        [
          ("seed", Right);
          ("injected", Right);
          ("retries", Right);
          ("giveups", Right);
          ("tape errors", Right);
          ("vulnerable", Right);
          ("crashed procs", Right);
          ("conservation", Left);
        ]
  in
  List.iter
    (fun o ->
      add_row t
        [
          string_of_int o.vm_seed;
          string_of_int o.vm_injected;
          string_of_int o.vm_retries;
          string_of_int o.vm_giveups;
          string_of_int o.tape_errors;
          string_of_int o.vulnerable;
          string_of_int o.crashed_procs;
          (if o.conservation_ok then "ok" else "VIOLATED");
        ])
    outcomes;
  t

let obs_counts () =
  let get name = Obs.Counter.get (Obs.Registry.counter (Obs.Registry.global ()) name) in
  [
    ("fault.checks", get "fault.checks");
    ("fault.injected", get "fault.injected");
    ("fault.retries", get "fault.retries");
    ("fault.giveups", get "fault.giveups");
    ("gate.refusals", get "gate.refusals");
    ("salvage.runs", get "salvage.runs");
    ("salvage.rolled_back", get "salvage.rolled_back");
    ("salvage.dangling_dropped", get "salvage.dangling_dropped");
    ("salvage.descriptors_repaired", get "salvage.descriptors_repaired");
    ("backup.tape_errors", get "backup.tape_errors");
  ]

let obs_table () =
  let open Multics_util.Table in
  let t =
    create ~title:(Printf.sprintf "%s: lib/obs totals for this run" id)
      ~columns:[ ("counter", Left); ("value", Right) ]
  in
  List.iter (fun (name, v) -> add_row t [ name; string_of_int v ]) (obs_counts ());
  t

let render () =
  let gates = Multics_par.Par.map (fun seed -> run_gate_pair ~seed ()) gate_seeds in
  let vms = Multics_par.Par.map (fun seed -> run_vm_pair ~seed ()) vm_seeds in
  let all_secure = List.for_all fail_secure gates in
  let verdict =
    Printf.sprintf "verdict: %d/%d seeded gate runs fail-secure%s"
      (List.length (List.filter fail_secure gates))
      (List.length gates)
      (if all_secure then " — the kernel never failed open" else " — FAIL-OPEN DETECTED")
  in
  String.concat "\n"
    [
      Multics_util.Table.render (gate_table gates);
      "";
      Multics_util.Table.render (vm_table vms);
      "";
      Multics_util.Table.render (obs_table ());
      "";
      verdict;
    ]
