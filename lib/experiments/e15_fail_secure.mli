(** E15 — fail-secure under deterministic fault injection: randomized
    gate/VM workloads under seeded fault plans; every granted access
    is re-validated against recomputed policy, and the post-salvage
    hierarchy is checked descriptor-by-descriptor. *)

val id : string
val title : string
val paper_claim : string

type gate_outcome = {
  seed : int;
  plan_spec : string;
  ops : int;
  granted : int;
  refused : int;
  injected : int;
  journaled : int;
  violations : int;
  probe_leaks : int;
  report : Multics_kernel.Salvager.report;
  post_salvage_bad : int;
  post_salvage_probe_leaks : int;
}

val fail_secure : gate_outcome -> bool
(** True iff no granted access violated policy, no probe leaked
    (during faults or after salvage), every post-salvage descriptor
    agrees with the reference monitor, and quota is consistent. *)

val run_gate_pair : ?ops:int -> seed:int -> unit -> gate_outcome
(** One randomized (workload, fault-plan) pair, both derived from
    [seed]; deterministic per seed.  Boots a fresh system, runs [ops]
    random gate calls under the plan, salvages, and sweeps the
    invariants.  Also exercised directly by the property tests. *)

type vm_outcome = {
  vm_seed : int;
  vm_injected : int;
  vm_retries : int;
  vm_giveups : int;
  tape_errors : int;
  vulnerable : int;
  crashed_procs : int;
  conservation_ok : bool;
}

val run_vm_pair : seed:int -> unit -> vm_outcome
(** Page-fault traffic plus the backup daemon under storage, tape and
    process-crash faults. *)

val obs_counts : unit -> (string * int) list
(** The fault/salvage counters from the lib/obs global registry. *)

val render : unit -> string
