(* E21 — bounded exhaustive model checking of the reference monitor.

   The 100-seed oracles (E15/E18/E19/E20) sample the interleaving
   space; the paper's certification argument is exhaustive.  This
   experiment drives [lib/mc]: breadth-first enumeration of every
   interleaving (to a depth bound) of ACL edits, bracket changes,
   content references from two CPUs, torn gate calls, salvages and —
   in bug mode — connect deliveries, on a 2-CPU / 2-segment /
   2-principal plant, with four safety predicates checked at every
   reachable state.

   Three legs:

   - the EXHAUSTIVE leg explores the healthy plant depth by depth,
     reporting states / expansions / wall-clock, and must find zero
     violations of all four predicates;

   - the SEEDED-BUG leg re-enables the pre-PR 5 deferred-connect
     window ([Smp.set_deferred_connects]) and must find the minimal
     stale-Permit counterexample — the two-action trace (warm a remote
     CPU's CAM, then revoke) the seeded oracles only find
     probabilistically — printed as a replayable shell script;

   - the PARITY leg re-runs a bounded exploration at pool sizes 1 and
     4 and compares the outcomes byte for byte ([lib/par]'s
     determinism contract extended to the checker's frontier). *)

module Mc = Multics_mc.Mc

let id = "E21"

let title = "Model checking: exhaustive interleaving search over the reference monitor"

let paper_claim =
  "the certification argument is exhaustive, not statistical: on a bounded plant, every \
   interleaving of descriptor edits, cross-CPU references, torn gate calls and salvages \
   must preserve the reference monitor's invariants — no stale Permit, no fail-open, no \
   downward flow, no mediation-path divergence"

(* Depth 5 saturates most of the plant's state space in seconds;
   MULTICS_MC_DEPTH overrides (CI smoke runs shallower). *)
let default_depth = 5

let depth () =
  match Sys.getenv_opt "MULTICS_MC_DEPTH" with
  | None -> default_depth
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 && d <= 8 -> d
      | Some _ | None -> default_depth)

let bug_depth = 3
let parity_depth = 3

let exhaustive_verdict (o : Mc.outcome) =
  let n = List.length o.Mc.o_counterexamples in
  if n = 0 then
    ( true,
      Printf.sprintf
        "[mc] 0 violations: exhaustive to depth %d, %d states, %d replays — stale-Permit, \
         fail-secure, lattice-flow and AV-parity hold on every reachable state"
        o.Mc.o_depth o.Mc.o_states o.Mc.o_expansions )
  else
    ( false,
      Printf.sprintf "[mc] %d violation%s found exploring to depth %d — see counterexamples" n
        (if n = 1 then "" else "s")
        o.Mc.o_depth )

let bug_verdict (o : Mc.outcome) =
  match
    List.find_opt
      (fun (c : Mc.counterexample) -> c.Mc.violation.Mc.predicate = "P1-stale-permit")
      o.Mc.o_counterexamples
  with
  | Some c ->
      ( true,
        Printf.sprintf
          "[mc-bug] deferred-connect window found: stale Permit reached in %d actions [%s]"
          (List.length c.Mc.trace) (Mc.trace_to_string c.Mc.trace),
        Some c )
  | None ->
      ( false,
        Printf.sprintf
          "[mc-bug] FAILED: no stale-Permit counterexample to depth %d with the bug enabled"
          o.Mc.o_depth,
        None )

let parity_verdict () =
  let run jobs = Mc.summary (Mc.explore ~jobs ~depth:parity_depth ()) in
  let sequential = run 1 in
  let pooled = run 4 in
  if String.equal sequential pooled then
    ( true,
      Printf.sprintf "[mc-parity] frontier parallelism is pool-size-invariant: depth %d \
                      outcomes identical at jobs=1 and jobs=4"
        parity_depth )
  else (false, "[mc-parity] FAILED: jobs=1 and jobs=4 outcomes differ")

let render () =
  let b = Buffer.create 4096 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  bpf "%s: %s\n\n" id title;
  bpf "Claim: %s.\n\n" paper_claim;
  let max_depth = depth () in
  bpf "--- exhaustive leg: the healthy plant, depth by depth ---\n\n";
  bpf "  %5s  %12s  %12s  %12s  %10s\n" "depth" "expansions" "new states" "states" "cpu-s";
  let deepest = ref None in
  for d = 1 to max_depth do
    let t0 = Sys.time () in
    let o = Mc.explore ~depth:d () in
    let dt = Sys.time () -. t0 in
    (match o.Mc.o_rows with
    | [] -> ()
    | rows ->
        let last = List.nth rows (List.length rows - 1) in
        bpf "  %5d  %12d  %12d  %12d  %10.2f\n" d last.Mc.row_expansions last.Mc.row_new_states
          o.Mc.o_states dt);
    deepest := Some o
  done;
  bpf "\n";
  let exhaustive_ok, exhaustive_line =
    match !deepest with
    | Some o -> exhaustive_verdict o
    | None -> (false, "[mc] FAILED: no exploration ran")
  in
  (match !deepest with
  | Some o when not exhaustive_ok ->
      List.iter
        (fun (c : Mc.counterexample) ->
          bpf "  counterexample: [%s]\n    %s\n" (Mc.trace_to_string c.Mc.trace)
            (Mc.violation_to_string c.Mc.violation))
        o.Mc.o_counterexamples
  | _ -> ());
  bpf "--- seeded-bug leg: the pre-PR 5 deferred-connect window, re-enabled ---\n\n";
  let bug_outcome = Mc.explore ~bug:true ~depth:bug_depth () in
  let _bug_ok, bug_line, counterexample = bug_verdict bug_outcome in
  (match counterexample with
  | Some c ->
      bpf "  minimal counterexample (%d actions): %s\n" (List.length c.Mc.trace)
        (Mc.violation_to_string c.Mc.violation);
      bpf "  replayable script:\n";
      String.split_on_char '\n' (Mc.counterexample_script c)
      |> List.iter (fun line -> if line <> "" then bpf "    %s\n" line)
  | None -> ());
  bpf "\n--- parity leg: the frontier pool must not change the outcome ---\n\n";
  let _parity_ok, parity_line = parity_verdict () in
  bpf "%s\n%s\n%s\n" exhaustive_line bug_line parity_line;
  Buffer.contents b
