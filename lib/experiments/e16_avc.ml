(* E16 — associative-memory simulation: the access-decision cache on
   the mediation hot path.

   The 6180 makes repeated segment references cheap because the
   processor re-validates access from a descriptor held in its
   associative memory instead of re-walking the descriptor segment;
   the price of that speed is the "setfaults" discipline — any
   attribute change must reach every cached copy immediately.  This
   experiment drives the software analogue (the {!Multics_fs}
   verdict cache, lib/cache's [Avc]) with workloads of varying
   locality and revocation churn, reads the hit ratio out of the
   cache's own obs counters, and prices a reference on both processor
   models:

     cost/ref = memory_reference + (1 - hit) * sdw_fetch

   where [sdw_fetch] stands for the descriptor fetch plus the policy
   recomputation a miss forces.  The uncached column charges the
   fetch on every reference — the system with no associative memory.

   Every reference is also recomputed from scratch
   ([check_access_fresh]) and compared: the [parity] column is the
   revocation-correctness claim, measured rather than assumed. *)

open Multics_access
open Multics_fs
open Multics_machine

let id = "E16"

let title = "AVC hit ratio vs per-reference mediation cost (H645 vs H6180)"

let paper_claim =
  "the 6180 validates most references from its associative memory, so mediation on every \
   reference is affordable; revocation (setfaults) must invalidate cached descriptors \
   immediately, and churn shows up as misses, never as stale grants"

(* Deterministic multiplicative LCG (Park–Miller) so the recorded
   table reproduces bit-for-bit. *)
let lcg seed =
  let state = ref (if seed <= 0 then 1 else seed) in
  fun bound ->
    state := !state * 48271 mod 0x7fffffff;
    !state mod bound

type workload = {
  wname : string;
  objects : int;
  hot : int;  (** size of the hot set *)
  hot_bias : int;  (** percent of references that stay in the hot set *)
  refs : int;
  edit_every : int;  (** ACL-edit one random object every N refs; 0 = never *)
}

let workloads =
  [
    { wname = "tight loop, no edits"; objects = 64; hot = 8; hot_bias = 100; refs = 20_000; edit_every = 0 };
    { wname = "hot/cold 90/10, rare edits"; objects = 256; hot = 16; hot_bias = 90; refs = 20_000; edit_every = 500 };
    { wname = "uniform, rare edits"; objects = 256; hot = 256; hot_bias = 0; refs = 20_000; edit_every = 500 };
    { wname = "hot/cold 90/10, edit storm"; objects = 256; hot = 16; hot_bias = 90; refs = 20_000; edit_every = 8 };
  ]

type row = {
  row_workload : string;
  refs : int;
  edits : int;
  hit_ratio : float;
  invalidations : int;
  parity_ok : bool;  (** cached verdict = fresh verdict at every step *)
}

let operator =
  Policy.subject ~trusted:true
    ~principal:(Principal.make ~person:"Initializer" ~project:"SysDaemon" ~tag:"z")
    ~clearance:(Label.system_high []) ~ring:(Ring.of_int 1) ()

let reader =
  Policy.subject
    ~principal:(Principal.make ~person:"Jones" ~project:"Apps" ~tag:"a")
    ~clearance:(Label.make Label.Secret []) ~ring:(Ring.of_int 4) ()

let counter_of stats name = try List.assoc name stats with Not_found -> 0

(* Build the two equivalent ACL variants once, before the measured
   loop: [Acl] construction itself fires the global on-change backstop,
   and an edit inside the loop should exercise the *per-object*
   invalidation path, not the sledgehammer. *)
let acl_variants =
  let base = [ ("Jones.*.*", "rw"); ("Initializer.*.*", "rew") ] in
  ( Acl.of_strings base,
    Acl.of_strings (("Backup.SysDaemon.*", "r") :: base) )

let run_workload w =
  let h = Hierarchy.create () in
  let acl_a, acl_b = acl_variants in
  let uids =
    Array.init w.objects (fun i ->
        match
          Hierarchy.create_segment h ~subject:operator ~dir:Uid.root
            ~name:(Printf.sprintf "seg_%03d" i) ~acl:acl_a
            ~label:(Label.make Label.Confidential [])
        with
        | Ok uid -> uid
        | Error e -> invalid_arg ("E16: create_segment: " ^ Hierarchy.error_to_string e))
  in
  let rand = lcg (17 + w.objects + w.edit_every) in
  let before = Hierarchy.cache_stats h in
  let edits = ref 0 in
  let parity_ok = ref true in
  for i = 1 to w.refs do
    if w.edit_every > 0 && i mod w.edit_every = 0 then begin
      let victim = uids.(rand w.objects) in
      let acl = if !edits land 1 = 0 then acl_b else acl_a in
      (match Hierarchy.set_acl h ~subject:operator ~uid:victim ~acl with
      | Ok () -> incr edits
      | Error e -> invalid_arg ("E16: set_acl: " ^ Hierarchy.error_to_string e))
    end;
    let idx =
      if rand 100 < w.hot_bias then rand w.hot else rand w.objects
    in
    let uid = uids.(idx) in
    let requested = if rand 4 = 0 then Mode.w else Mode.r in
    let cached = Hierarchy.check_access h ~subject:reader ~uid ~requested in
    let fresh = Hierarchy.check_access_fresh h ~subject:reader ~uid ~requested in
    if cached <> fresh then parity_ok := false
  done;
  let after = Hierarchy.cache_stats h in
  let delta name = counter_of after name - counter_of before name in
  let hits = delta "hits" and misses = delta "misses" in
  {
    row_workload = w.wname;
    refs = w.refs;
    edits = !edits;
    hit_ratio = (if hits + misses = 0 then 0.0 else float_of_int hits /. float_of_int (hits + misses));
    invalidations = delta "invalidations";
    parity_ok = !parity_ok;
  }

let measure () = List.map run_workload workloads

(* The cost model applied to a measured hit ratio. *)
let cost_per_ref cost ~hit_ratio =
  float_of_int cost.Cost.memory_reference
  +. ((1.0 -. hit_ratio) *. float_of_int cost.Cost.sdw_fetch)

let uncached_cost_per_ref cost =
  float_of_int (cost.Cost.memory_reference + cost.Cost.sdw_fetch)

let table () =
  let open Multics_util.Table in
  let t =
    create
      ~title:(Printf.sprintf "%s: %s" id title)
      ~columns:
        [
          ("workload", Left);
          ("refs", Right);
          ("edits", Right);
          ("hit ratio", Right);
          ("inval", Right);
          ("645 cyc/ref", Right);
          ("645 speedup", Right);
          ("6180 cyc/ref", Right);
          ("6180 speedup", Right);
          ("parity", Left);
        ]
  in
  List.iter
    (fun r ->
      let c645 = cost_per_ref Cost.h645 ~hit_ratio:r.hit_ratio in
      let c6180 = cost_per_ref Cost.h6180 ~hit_ratio:r.hit_ratio in
      add_row t
        [
          r.row_workload;
          string_of_int r.refs;
          string_of_int r.edits;
          fmt_pct r.hit_ratio;
          string_of_int r.invalidations;
          fmt_float ~decimals:1 c645;
          fmt_ratio (uncached_cost_per_ref Cost.h645 /. c645);
          fmt_float ~decimals:1 c6180;
          fmt_ratio (uncached_cost_per_ref Cost.h6180 /. c6180);
          (if r.parity_ok then "ok" else "STALE VERDICT");
        ])
    (measure ());
  t

let render () = Multics_util.Table.render (table ())
