(** E16 — associative-memory simulation: hit ratio of the
    access-decision cache under workloads of varying locality and
    revocation churn, and the per-reference mediation cost that hit
    ratio implies on the H645 (no associative memory worth the name)
    and the H6180.  The [parity] column re-derives every verdict from
    scratch and compares — revocation correctness is measured, not
    assumed. *)

val id : string
val title : string
val paper_claim : string

type workload = {
  wname : string;
  objects : int;
  hot : int;  (** size of the hot set *)
  hot_bias : int;  (** percent of references that stay in the hot set *)
  refs : int;
  edit_every : int;  (** ACL-edit one random object every N refs; 0 = never *)
}

val workloads : workload list

type row = {
  row_workload : string;
  refs : int;
  edits : int;
  hit_ratio : float;
  invalidations : int;
  parity_ok : bool;  (** cached verdict = fresh verdict at every step *)
}

val run_workload : workload -> row
val measure : unit -> row list

val cost_per_ref : Multics_machine.Cost.t -> hit_ratio:float -> float
(** [memory_reference + (1 - hit) * sdw_fetch]. *)

val uncached_cost_per_ref : Multics_machine.Cost.t -> float

val table : unit -> Multics_util.Table.t
val render : unit -> string
