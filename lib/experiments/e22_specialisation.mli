(** E22 — per-workload kernel specialisation: profile three workload
    mixes through the per-gate dispatch counters, compile each profile
    into a specialised gate table (lib/spec), and measure the
    attack-surface / functionality / dispatch-cost frontier — with the
    E11 penetration corpus against every specialisation and a 100-seed
    oracle proving specialised kernels byte-identical to the full
    kernel on every request they admit. *)

val id : string
val title : string
val paper_claim : string

val config : Multics_kernel.Config.t

val specialisations : unit -> Multics_spec.Spec.Specialisation.t list
(** The measured frontier points: the full surface plus the three
    profiled mixes (editor-compile, daemon-only, minimal), each
    compiled from a profile that has round-tripped through its
    serialisation. *)

val parity_oracle : ?jobs:int -> Multics_spec.Spec.Specialisation.t list -> int * int
(** [(divergences, specialised_kernels)] over the 100-seed
    admitted-request parity run; 0 divergences means every admitted
    request rendered byte-identically at the full and specialised
    kernels and every stripped gate refused with [Gate_absent]. *)

val render : unit -> string
