(* E22 — per-workload kernel specialisation: the attack-surface /
   functionality / dispatch-cost frontier.

   The paper's removal projects stripped gates for every installation
   at once (linker: 10% of entries; linker + naming: one third).  This
   experiment applies the same discipline per workload: three E17-style
   workload mixes (editor-compile interactive development, a
   wakeup-driven daemon, a minimal IPC ping) are profiled through the
   per-gate lib/obs dispatch counters, each profile is compiled into a
   specialised gate table (lib/spec) that strips every unused entry,
   and the frontier is measured:

   - attack surface: gates kept, functional and at the E12 paper scale
     (Inventory.specialised_surface);
   - functionality: which of a reference probe suite (the union of the
     mixes' gate traffic plus the network I/O gates) still succeeds;
   - dispatch cost: metered cycles per gate call under the mask;
   - security: the full E11 penetration corpus runs against every
     specialisation — stripping must never CREATE a violation, and
     stripped gates refuse with [Gate_absent] before any kernel state
     is touched;
   - equivalence: a 100-seed oracle drives identical request streams
     at a full and a specialised kernel — byte-identical responses on
     every admitted request, [Gate_absent] on every stripped one.

   Profiles round-trip through their serialisation before compilation,
   so the specialisations measured here are the replayed form. *)

open Multics_kernel
module Spec = Multics_spec.Spec
module Obs = Multics_obs.Obs
module Pentest = Multics_audit.Pentest
module Inventory = Multics_audit.Inventory
module Prng = Multics_util.Prng
module Table = Multics_util.Table

let id = "E22"

let title = "Per-workload specialisation: attack-surface/functionality/cost frontier"

let paper_claim =
  "removing supervisor entry points shrinks the surface that must be certified — the linker \
   removal eliminated 10% of the gates, linker plus naming one third; specialising the gate \
   table to an observed workload continues the same curve without changing any decision the \
   kernel makes on the requests it still admits"

let config = Config.kernel_6180

(* Gates every specialisation keeps regardless of profile: subsystem
   entry and logout, so users can still reach and leave the machine. *)
let always_keep = [ "enter_subsystem"; "logout" ]

(* ----- A booted development system ----- *)

type env = {
  system : System.t;
  handle : int;
  home : int;  (* >udd>Dev>Alice *)
  data : int;  (* a shared scratch segment *)
  chan : int;  (* an IPC channel *)
  mutable uniq : int;  (* unique-name counter for create templates *)
}

let expect what = function
  | Ok v -> v
  | Error e -> invalid_arg (Printf.sprintf "E22 boot: %s: %s" what (Api.error_to_string e))

let dispatch env request = Api.Call.dispatch env.system ~handle:env.handle request

let acl_rw = Multics_access.Acl.of_strings [ ("Alice.Dev.*", "rew") ]
let label = Multics_access.Label.unclassified

(* Boot is identical on every call: same account, same segment
   numbers, same channel id — the parity oracle depends on it. *)
let boot () =
  let system = System.create config in
  ignore
    (System.add_account system ~person:"Alice" ~project:"Dev" ~password:"pw"
       ~clearance:Multics_access.Label.unclassified);
  let handle =
    match System.login system ~person:"Alice" ~project:"Dev" ~password:"pw" with
    | Ok handle -> handle
    | Error e -> invalid_arg ("E22 boot: login: " ^ System.login_error_to_string e)
  in
  let home =
    match User_env.resolve_path system ~handle ~path:">udd>Dev>Alice" with
    | Ok segno -> segno
    | Error e -> invalid_arg ("E22 boot: home: " ^ User_env.error_to_string e)
  in
  let env = { system; handle; home; data = 0; chan = 0; uniq = 0 } in
  let data =
    match
      dispatch env
        (Api.Call.Create_segment
           { dir_segno = home; name = "data"; acl = acl_rw; label; brackets = None })
    with
    | Ok (Api.Call.Segno segno) -> segno
    | Ok _ -> invalid_arg "E22 boot: create data: unexpected reply"
    | r -> expect "create data" (Result.map (fun _ -> 0) r)
  in
  let chan =
    match dispatch env Api.Call.Create_channel with
    | Ok (Api.Call.Channel chan) -> chan
    | Ok _ -> invalid_arg "E22 boot: create channel: unexpected reply"
    | r -> expect "create channel" (Result.map (fun _ -> 0) r)
  in
  expect "seed data"
    (Result.map (fun _ -> ())
       (dispatch env (Api.Call.Write_word { segno = data; offset = 0; value = 17 })));
  { env with data; chan }

(* ----- The workload mixes (E17's user classes, scripted) ----- *)

let ok what = function
  | Ok _ -> ()
  | Error e -> invalid_arg (Printf.sprintf "E22 mix: %s: %s" what (Api.error_to_string e))

(* Interactive development: tree walking, segment churn, editing,
   ACL management — the fs-directory and fs-content surface. *)
let editor_compile_mix env =
  ok "initiate" (dispatch env (Api.Call.Initiate { dir_segno = env.home; name = "data" }));
  for i = 1 to 3 do
    ok "create obj"
      (dispatch env
         (Api.Call.Create_segment
            {
              dir_segno = env.home;
              name = Printf.sprintf "obj_%d" i;
              acl = acl_rw;
              label;
              brackets = None;
            }))
  done;
  ok "mkdir"
    (dispatch env
       (Api.Call.Create_directory { dir_segno = env.home; name = "build"; acl = acl_rw; label }));
  for offset = 0 to 4 do
    ok "write" (dispatch env (Api.Call.Write_word { segno = env.data; offset; value = offset }));
    ok "read" (dispatch env (Api.Call.Read_word { segno = env.data; offset }))
  done;
  ok "ls" (dispatch env (Api.Call.List_directory { dir_segno = env.home }));
  ok "status" (dispatch env (Api.Call.Status_entry { dir_segno = env.home; name = "data" }));
  ok "set_acl" (dispatch env (Api.Call.Set_acl { segno = env.data; acl = acl_rw }));
  ok "rename"
    (dispatch env
       (Api.Call.Rename_entry { dir_segno = env.home; name = "obj_1"; new_name = "obj_1.old" }));
  ok "delete" (dispatch env (Api.Call.Delete_entry { dir_segno = env.home; name = "obj_1.old" }))

(* A background daemon: wakeup-driven service over a known segment —
   IPC plus content references, no directory churn. *)
let daemon_only_mix env =
  ok "initiate" (dispatch env (Api.Call.Initiate { dir_segno = env.home; name = "data" }));
  for round = 1 to 4 do
    ok "wakeup" (dispatch env (Api.Call.Send_wakeup { channel = env.chan }));
    ok "block" (dispatch env (Api.Call.Block { channel = env.chan }));
    ok "read" (dispatch env (Api.Call.Read_word { segno = env.data; offset = 0 }));
    ok "write" (dispatch env (Api.Call.Write_word { segno = env.data; offset = 0; value = round }))
  done

(* The minimal tenant: an IPC ping and nothing else. *)
let minimal_mix env =
  let chan =
    match dispatch env Api.Call.Create_channel with
    | Ok (Api.Call.Channel chan) -> chan
    | _ -> invalid_arg "E22 mix: minimal channel"
  in
  ok "wakeup" (dispatch env (Api.Call.Send_wakeup { channel = chan }));
  ok "block" (dispatch env (Api.Call.Block { channel = chan }))

let mixes =
  [
    ("editor-compile", editor_compile_mix);
    ("daemon-only", daemon_only_mix);
    ("minimal", minimal_mix);
  ]

(* Profile a mix on a fresh full-surface boot, then prove the profile
   survives serialisation and compile the replayed form. *)
let compile_mix (mix_name, mix) =
  let env = boot () in
  let profile, () = Spec.Profile.observe ~name:mix_name (fun () -> mix env) in
  let replayed =
    match Spec.Profile.of_string (Spec.Profile.to_string profile) with
    | Ok p when p = profile -> p
    | Ok _ -> invalid_arg (Printf.sprintf "E22: profile %s changed across round-trip" mix_name)
    | Error e -> invalid_arg (Printf.sprintf "E22: profile %s round-trip: %s" mix_name e)
  in
  Spec.Specialisation.compile ~keep:always_keep ~name:mix_name config replayed

let specialisations () =
  Spec.Specialisation.full config :: List.map compile_mix mixes

(* ----- The functionality probe suite -----

   The union of the mixes' gate traffic plus the network I/O gates:
   one probe per gate, each expected to succeed against the full
   surface.  Under a mask, a probe whose gate is stripped refuses with
   [Gate_absent]; a probe whose setup another stripped gate broke
   fails too — both are honest functionality loss. *)

let probes : (string * (env -> bool)) list =
  let is_ok = function Ok _ -> true | Error _ -> false in
  [
    ("initiate", fun env -> is_ok (dispatch env (Api.Call.Initiate { dir_segno = env.home; name = "data" })));
    ( "create_segment",
      fun env ->
        is_ok
          (dispatch env
             (Api.Call.Create_segment
                { dir_segno = env.home; name = "probe_seg"; acl = acl_rw; label; brackets = None })) );
    ( "create_directory",
      fun env ->
        is_ok
          (dispatch env
             (Api.Call.Create_directory { dir_segno = env.home; name = "probe_dir"; acl = acl_rw; label })) );
    ( "rename_entry",
      fun env ->
        is_ok
          (dispatch env
             (Api.Call.Rename_entry
                { dir_segno = env.home; name = "probe_seg"; new_name = "probe_seg2" })) );
    ( "delete_entry",
      fun env ->
        is_ok (dispatch env (Api.Call.Delete_entry { dir_segno = env.home; name = "probe_seg2" })) );
    ("list_directory", fun env -> is_ok (dispatch env (Api.Call.List_directory { dir_segno = env.home })));
    ( "status_entry",
      fun env -> is_ok (dispatch env (Api.Call.Status_entry { dir_segno = env.home; name = "data" })) );
    ("set_acl", fun env -> is_ok (dispatch env (Api.Call.Set_acl { segno = env.data; acl = acl_rw })));
    ( "set_quota",
      fun env -> is_ok (dispatch env (Api.Call.Set_quota { segno = env.home; quota = Some 64 })) );
    ( "write_word",
      fun env -> is_ok (dispatch env (Api.Call.Write_word { segno = env.data; offset = 1; value = 7 })) );
    ("read_word", fun env -> is_ok (dispatch env (Api.Call.Read_word { segno = env.data; offset = 1 })));
    ("create_channel", fun env -> is_ok (dispatch env Api.Call.Create_channel));
    ("send_wakeup", fun env -> is_ok (dispatch env (Api.Call.Send_wakeup { channel = env.chan })));
    ("block", fun env -> is_ok (dispatch env (Api.Call.Block { channel = env.chan })));
    ( "net_attach",
      fun env -> is_ok (dispatch env (Api.Call.Attach_device { device = Multics_io.Device.Terminal })) );
    ( "net_io",
      fun env ->
        is_ok
          (dispatch env (Api.Call.Device_write { device = Multics_io.Device.Terminal; message = 9 })) );
    ( "net_detach",
      fun env -> is_ok (dispatch env (Api.Call.Detach_device { device = Multics_io.Device.Terminal })) );
  ]

(* Run the suite under a specialisation, metering dispatch cost
   through the gate counters (refusals cross the gate too). *)
let run_probes spec =
  let env = boot () in
  Spec.Specialisation.apply env.system spec;
  let was = Obs.enabled () in
  Obs.set_enabled true;
  let before = Obs.Snapshot.capture () in
  let passed =
    Fun.protect
      ~finally:(fun () -> Obs.set_enabled was)
      (fun () -> List.length (List.filter (fun (_, probe) -> probe env) probes))
  in
  let after = Obs.Snapshot.capture () in
  let d = Obs.Snapshot.diff ~before ~after in
  let counter name = try List.assoc name d.Obs.Snapshot.counters with Not_found -> 0 in
  let calls = counter "gate.calls" and cycles = counter "gate.cycles" in
  let cost = if calls = 0 then 0.0 else float_of_int cycles /. float_of_int calls in
  (passed, cost)

(* ----- The E11 corpus under each specialisation ----- *)

let corpus_violations spec =
  let results =
    Pentest.run_corpus ~prepare:(fun system -> Spec.Specialisation.apply system spec) config
  in
  (Pentest.summarize results).Pentest.violated

(* ----- The 100-seed admitted-request parity oracle ----- *)

(* Request templates, one per dispatchable catalog gate.  [t_stream]
   marks templates safe to repeat mid-stream (terminate would tear
   down the scratch segment for the rest of the run — refusal parity
   would still hold, but the stream would stop exercising content
   gates).  Each template builds ONE request; the oracle dispatches
   the same value at both kernels. *)
type template = { t_gate : string; t_stream : bool; t_make : env -> Prng.t -> Api.Call.request }

let templates : template list =
  [
    { t_gate = "initiate"; t_stream = true;
      t_make = (fun env _ -> Api.Call.Initiate { dir_segno = env.home; name = "data" }) };
    { t_gate = "terminate"; t_stream = false;
      t_make = (fun env _ -> Api.Call.Terminate { segno = env.data }) };
    { t_gate = "create_segment"; t_stream = true;
      t_make =
        (fun env _ ->
          env.uniq <- env.uniq + 1;
          Api.Call.Create_segment
            { dir_segno = env.home; name = Printf.sprintf "s%d" env.uniq; acl = acl_rw; label;
              brackets = None }) };
    { t_gate = "create_directory"; t_stream = true;
      t_make =
        (fun env _ ->
          env.uniq <- env.uniq + 1;
          Api.Call.Create_directory
            { dir_segno = env.home; name = Printf.sprintf "d%d" env.uniq; acl = acl_rw; label }) };
    { t_gate = "delete_entry"; t_stream = true;
      t_make =
        (fun env _ ->
          (* Deletes the most recent creation when one exists;
             otherwise a No_entry refusal — identical on both sides. *)
          Api.Call.Delete_entry { dir_segno = env.home; name = Printf.sprintf "s%d" env.uniq }) };
    { t_gate = "rename_entry"; t_stream = true;
      t_make =
        (fun env _ ->
          Api.Call.Rename_entry
            { dir_segno = env.home; name = Printf.sprintf "d%d" env.uniq;
              new_name = Printf.sprintf "d%d.old" env.uniq }) };
    { t_gate = "list_directory"; t_stream = true;
      t_make = (fun env _ -> Api.Call.List_directory { dir_segno = env.home }) };
    { t_gate = "status_entry"; t_stream = true;
      t_make = (fun env _ -> Api.Call.Status_entry { dir_segno = env.home; name = "data" }) };
    { t_gate = "set_acl"; t_stream = true;
      t_make = (fun env _ -> Api.Call.Set_acl { segno = env.data; acl = acl_rw }) };
    { t_gate = "set_brackets"; t_stream = true;
      t_make =
        (fun env _ ->
          Api.Call.Set_brackets
            { segno = env.data; brackets = Multics_machine.Brackets.user_data }) };
    { t_gate = "set_gate_bound"; t_stream = true;
      t_make = (fun env prng -> Api.Call.Set_gate_bound { segno = env.data; gate_bound = Prng.int prng 6 }) };
    { t_gate = "set_quota"; t_stream = true;
      t_make = (fun env prng -> Api.Call.Set_quota { segno = env.home; quota = Some (32 + Prng.int prng 32) }) };
    { t_gate = "read_word"; t_stream = true;
      t_make = (fun env prng -> Api.Call.Read_word { segno = env.data; offset = Prng.int prng 8 }) };
    { t_gate = "write_word"; t_stream = true;
      t_make =
        (fun env prng ->
          Api.Call.Write_word { segno = env.data; offset = Prng.int prng 8; value = Prng.int prng 100 }) };
    { t_gate = "create_channel"; t_stream = true;
      t_make = (fun _ _ -> Api.Call.Create_channel) };
    { t_gate = "send_wakeup"; t_stream = true;
      t_make = (fun env _ -> Api.Call.Send_wakeup { channel = env.chan }) };
    { t_gate = "block"; t_stream = true;
      t_make = (fun env _ -> Api.Call.Block { channel = env.chan }) };
    { t_gate = "net_attach"; t_stream = true;
      t_make = (fun _ _ -> Api.Call.Attach_device { device = Multics_io.Device.Terminal }) };
    { t_gate = "net_io"; t_stream = true;
      t_make = (fun _ prng ->
          Api.Call.Device_write { device = Multics_io.Device.Terminal; message = Prng.int prng 50 }) };
    { t_gate = "net_detach"; t_stream = true;
      t_make = (fun _ _ -> Api.Call.Detach_device { device = Multics_io.Device.Terminal }) };
    { t_gate = "enter_subsystem"; t_stream = true;
      t_make = (fun _ _ -> Api.Call.Enter_subsystem { segno = 999; entry_offset = 0; name = "ss" }) };
  ]

let render_reply = function
  | Api.Call.Done -> "done"
  | Api.Call.Segno segno -> Printf.sprintf "segno %d" segno
  | Api.Call.Word value -> Printf.sprintf "word %d" value
  | Api.Call.Message None -> "message none"
  | Api.Call.Message (Some m) -> Printf.sprintf "message %d" m
  | Api.Call.Names names -> "names [" ^ String.concat ";" names ^ "]"
  | Api.Call.Status st ->
      Printf.sprintf "status %s/%d" st.Api.status_name st.Api.status_pages
  | Api.Call.Links links -> Printf.sprintf "links %d" (List.length links)
  | Api.Call.Snapped { segno; offset } -> Printf.sprintf "snapped %d+%d" segno offset
  | Api.Call.Entered ring -> Printf.sprintf "entered %d" (Multics_machine.Ring.to_int ring)
  | Api.Call.Channel chan -> Printf.sprintf "channel %d" chan
  | Api.Call.Consumed pending -> Printf.sprintf "consumed %b" pending
  | Api.Call.Process handle -> Printf.sprintf "process %d" handle
  | Api.Call.Processes handles ->
      "processes [" ^ String.concat ";" (List.map string_of_int handles) ^ "]"
  | Api.Call.Info info -> Printf.sprintf "info %s/%d" info.Api.info_principal info.Api.info_ring
  | Api.Call.Fault_report _ -> "fault_report"
  | Api.Call.Salvaged _ -> "salvaged"
  | Api.Call.Probed _ -> "probed"
  | Api.Call.Cache_report _ -> "cache_report"
  | Api.Call.Sched_report _ -> "sched_report"
  | Api.Call.Smp_report _ -> "smp_report"

let render_response = function
  | Ok reply -> "ok " ^ render_reply reply
  | Error e -> "err " ^ Api.error_to_string e

let parity_seeds = 100
let requests_per_seed = 40

(* One seed, one specialisation: a full and a specialised kernel boot
   identically, then serve the same admitted-request stream; every
   response must render identically.  Then every stripped gate with a
   dispatchable template is driven once at the specialised kernel and
   must refuse with its own [Gate_absent], leaving an audit record.
   Returns the number of divergences. *)
let parity_run spec seed =
  let prng = Prng.create_labeled ~seed ~label:("e22.parity." ^ Spec.Specialisation.name spec) in
  let full_env = boot () in
  let spec_env = boot () in
  if full_env.home <> spec_env.home || full_env.data <> spec_env.data then
    invalid_arg "E22: boot is not deterministic";
  Spec.Specialisation.apply spec_env.system spec;
  let divergences = ref 0 in
  let stream =
    List.filter
      (fun t -> t.t_stream && Spec.Specialisation.admits spec ~gate:t.t_gate)
      templates
  in
  let stream = Array.of_list stream in
  for _ = 1 to requests_per_seed do
    let t = stream.(Prng.int prng (Array.length stream)) in
    let request = t.t_make full_env prng in
    let at_full = render_response (Api.Call.dispatch full_env.system ~handle:full_env.handle request) in
    let at_spec = render_response (Api.Call.dispatch spec_env.system ~handle:spec_env.handle request) in
    if at_full <> at_spec then incr divergences
  done;
  List.iter
    (fun gate ->
      match List.find_opt (fun t -> t.t_gate = gate) templates with
      | None -> () (* the ring-1 page-mechanism gates have no Call surface *)
      | Some t ->
          let request = t.t_make full_env prng in
          let refusals_before = Audit_log.refusal_count (System.audit spec_env.system) in
          (match Api.Call.dispatch spec_env.system ~handle:spec_env.handle request with
          | Error (Api.Gate_absent g) when g = gate -> ()
          | _ -> incr divergences);
          if Audit_log.refusal_count (System.audit spec_env.system) <= refusals_before then
            incr divergences)
    (Spec.Specialisation.stripped spec);
  !divergences

let parity_oracle ?jobs specs =
  let stripped_specs = List.filter (fun s -> Spec.Specialisation.stripped s <> []) specs in
  let per_seed =
    Multics_par.Par.run_seeds ?jobs parity_seeds (fun seed ->
        List.fold_left (fun acc spec -> acc + parity_run spec seed) 0 stripped_specs)
  in
  (List.fold_left ( + ) 0 per_seed, List.length stripped_specs)

(* ----- Rendering ----- *)

type frontier_row = {
  fr_name : string;
  fr_kept : int;
  fr_stripped : int;
  fr_paper : Inventory.specialised_surface;
  fr_probes_ok : int;
  fr_cost : float;
  fr_violations : int;
}

let frontier_row spec =
  let probes_ok, cost = run_probes spec in
  {
    fr_name = Spec.Specialisation.name spec;
    fr_kept = Spec.Specialisation.gate_count spec;
    fr_stripped = List.length (Spec.Specialisation.stripped spec);
    fr_paper =
      Inventory.specialised_surface config ~admitted:(fun gate ->
          Spec.Specialisation.admits spec ~gate);
    fr_probes_ok = probes_ok;
    fr_cost = cost;
    fr_violations = corpus_violations spec;
  }

let frontier_table rows =
  let full = Spec.Specialisation.full config in
  let full_count = Spec.Specialisation.gate_count full in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "%s: specialisation frontier (%s, %d catalog gates)" id
           config.Config.name full_count)
      ~columns:
        [
          ("specialisation", Table.Left);
          ("gates kept", Table.Right);
          ("stripped", Table.Right);
          ("% of full", Table.Right);
          ("paper-scale surface", Table.Right);
          ("probes ok", Table.Right);
          ("cycles/call", Table.Right);
          ("E11 violations", Table.Right);
        ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.fr_name;
          string_of_int r.fr_kept;
          string_of_int r.fr_stripped;
          Table.fmt_float ~decimals:0
            (100.0 *. float_of_int r.fr_kept /. float_of_int full_count);
          Printf.sprintf "%d of %d" r.fr_paper.Inventory.paper_kept
            r.fr_paper.Inventory.paper_full;
          Printf.sprintf "%d/%d" r.fr_probes_ok (List.length probes);
          Table.fmt_float ~decimals:0 r.fr_cost;
          string_of_int r.fr_violations;
        ])
    rows;
  t

let frontier_verdict rows =
  let counts = List.map (fun r -> r.fr_kept) rows in
  let rec non_increasing = function
    | a :: b :: rest -> a >= b && non_increasing (b :: rest)
    | _ -> true
  in
  let full = List.hd counts in
  let minimal = List.nth counts (List.length counts - 1) in
  let third_stripped =
    List.for_all (fun r -> r.fr_name = "full" || r.fr_stripped * 3 >= full) rows
  in
  let ok =
    non_increasing counts && minimal * 3 <= full * 2 && third_stripped
    && List.length rows >= 4
  in
  ( ok,
    Printf.sprintf
      "%d specialisations, gates %s; minimal keeps %d of %d (<= 2/3); every profiled \
       specialisation strips >= 1/3 of the entries"
      (List.length rows)
      (String.concat " >= " (List.map string_of_int counts))
      minimal full )

let surface_verdict rows =
  let violations = List.fold_left (fun acc r -> acc + r.fr_violations) 0 rows in
  ( violations = 0,
    Printf.sprintf
      "E11 corpus: %d successful penetrations across %d specialisations (%d attacks each); \
       stripped gates refuse with Gate_absent before any kernel state is touched"
      violations (List.length rows)
      (List.length Pentest.corpus) )

let parity_verdict ?jobs specs =
  let divergences, nspecs = parity_oracle ?jobs specs in
  let jobs = match jobs with Some j -> j | None -> Multics_par.Par.default_jobs () in
  ( divergences = 0,
    Printf.sprintf
      "%d seeds, %d admitted requests each, %d specialised kernels: %d divergences from the \
       full kernel; every stripped gate refused with Gate_absent (jobs=%d)"
      parity_seeds requests_per_seed nspecs divergences jobs )

let render () =
  let buf = Buffer.create 4096 in
  let specs = specialisations () in
  let rows = List.map frontier_row specs in
  Buffer.add_string buf (Table.render (frontier_table rows));
  let fr_ok, fr_line = frontier_verdict rows in
  Buffer.add_string buf
    (Printf.sprintf "\n%s %s\n" (if fr_ok then "[frontier]" else "[FRONTIER BROKEN]") fr_line);
  let su_ok, su_line = surface_verdict rows in
  Buffer.add_string buf
    (Printf.sprintf "%s %s\n" (if su_ok then "[surface]" else "[SURFACE BROKEN]") su_line);
  let pa_ok, pa_line = parity_verdict specs in
  Buffer.add_string buf
    (Printf.sprintf "%s %s\n" (if pa_ok then "[spec-parity]" else "[SPEC PARITY BROKEN]") pa_line);
  Buffer.contents buf
