(** E21 — bounded exhaustive model checking over the reference
    monitor: every interleaving of a small concurrent request alphabet
    is searched for mediation violations, with a seeded-bug leg
    proving the checker can see one and a parity leg tying the model
    to the running kernel. *)

val id : string
val title : string
val paper_claim : string

val default_depth : int

val depth : unit -> int
(** Search depth: [MULTICS_MC_DEPTH] when set (clamped to a sane
    range), else {!default_depth}. *)

val render : unit -> string
