(* E17 — the traffic controller under multi-user timesharing load.

   Three measurements, all on the deterministic workload driver
   (lib/sched's [Workload]):

   1. A user sweep (10 -> 10,000 interactive sessions) on both
      processor cost models, charting response time and throughput as
      the machine saturates.  Memory is auto-sized here so the sweep
      measures scheduling, not paging.

   2. A cap sweep against a FIXED core budget: the eligibility cap is
      the working-set admission control the controller negotiates with
      page control, and pushing it past what core supports reproduces
      the classic thrashing knee — page faults per interaction jump
      and response time collapses, with an idle-looking CPU.

   3. A policy parity check: the same workload under the ring-0 MLF
      controller, the stripped FIFO, and the user-ring external policy
      must produce the identical mediation digest and audit totals —
      the reference monitor cannot be perturbed by scheduling — while
      the kernel-surface table prices each policy's ring-0 footprint
      (the E12 inventory argument applied to scheduling). *)

open Multics_sched
module Cost = Multics_machine.Cost
module Stats = Multics_util.Stats
module Table = Multics_util.Table

let id = "E17"

let title = "traffic controller: saturation, thrashing knee, policy invariance"

let paper_claim =
  "scheduling policy does not belong in the security kernel: only the quantum/eligibility \
   mechanism must stay in ring 0, and no choice of policy can change what the reference \
   monitor decides; the eligibility cap is negotiated against core so over-admission — not \
   load itself — causes thrashing"

(* ----- 1. the user sweep ----- *)

type sweep_row = {
  sw_users : int;
  sw_completed : int;
  sw_cycles : int;
  sw_throughput : float;
  sw_response : Stats.summary;
  sw_faults : int;
}

(* Interactions scale down as users scale up so the largest points stay
   tractable; throughput is per-cycle so rows remain comparable. *)
let sweep_points = [ (10, 4); (100, 3); (1_000, 2); (10_000, 1) ]

let sweep_spec ~cost (users, interactions) =
  {
    Workload.default with
    seed = 17;
    users;
    interactions;
    think = 30_000;
    service = 1_500;
    working_set = 3;
    passes = 2;
    batch = (if users >= 1_000 then 0 else 2);
    daemons = 1;
    gate_calls = users <= 1_000;
    vps = 4;
    cap = 0;
    cost;
  }

(* Each sweep point boots its own kernel from independent PRNG streams;
   the points fan out over domains and reduce in point order. *)
let run_sweep ~cost =
  Multics_par.Par.map
    (fun point ->
      let r = Workload.run (sweep_spec ~cost point) in
      {
        sw_users = r.Workload.r_users;
        sw_completed = r.Workload.r_completed;
        sw_cycles = r.Workload.r_cycles;
        sw_throughput = r.Workload.r_throughput;
        sw_response = r.Workload.r_response;
        sw_faults = r.Workload.r_page_faults;
      })
    sweep_points

let sweep_table ~label rows =
  let t =
    Table.create
      ~title:(Printf.sprintf "%s: user sweep (%s)" id label)
      ~columns:
        [
          ("users", Table.Right);
          ("done", Table.Right);
          ("cycles", Table.Right);
          ("inter/Mcyc", Table.Right);
          ("resp p50", Table.Right);
          ("resp p99", Table.Right);
          ("faults", Table.Right);
        ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          string_of_int r.sw_users;
          string_of_int r.sw_completed;
          string_of_int r.sw_cycles;
          Table.fmt_float ~decimals:2 r.sw_throughput;
          Table.fmt_float ~decimals:0 r.sw_response.Stats.p50;
          Table.fmt_float ~decimals:0 r.sw_response.Stats.p99;
          string_of_int r.sw_faults;
        ])
    rows;
  t

(* ----- 2. the thrashing knee ----- *)

type knee_row = {
  kn_cap : int;
  kn_throughput : float;
  kn_p50 : float;
  kn_p99 : float;
  kn_faults_per : float;
  kn_stalls : int;
}

(* 24 sessions of 6 pages each against 26 core frames: the negotiated
   cap is 26/6 = 4.  Every point past it over-admits. *)
let knee_users = 24

let knee_working_set = 6

let knee_core = 26

let knee_caps = [ 1; 2; 4; 6; 8; 12; 16 ]

let knee_spec cap =
  {
    Workload.default with
    seed = 23;
    users = knee_users;
    interactions = 2;
    think = 2_000;
    service = 600;
    working_set = knee_working_set;
    passes = 3;
    batch = 0;
    daemons = 0;
    gate_calls = false;
    vps = 4;
    core = knee_core;
    bulk = 60;
    disk = 400;
    cap;
  }

let run_knee () =
  Multics_par.Par.map
    (fun cap ->
      let r = Workload.run (knee_spec cap) in
      {
        kn_cap = cap;
        kn_throughput = r.Workload.r_throughput;
        kn_p50 = r.Workload.r_response.Stats.p50;
        kn_p99 = r.Workload.r_response.Stats.p99;
        kn_faults_per =
          float_of_int r.Workload.r_page_faults
          /. float_of_int (max 1 r.Workload.r_completed);
        kn_stalls =
          (try List.assoc "eligibility.stalls" r.Workload.r_sched with Not_found -> 0);
      })
    knee_caps

let negotiated = Sched.negotiated_cap ~core_frames:knee_core ~working_set:knee_working_set

let knee_table rows =
  let t =
    Table.create
      ~title:
        (Printf.sprintf "%s: eligibility cap vs %d core frames (ws %d, negotiated cap %d)" id
           knee_core knee_working_set negotiated)
      ~columns:
        [
          ("cap", Table.Right);
          ("inter/Mcyc", Table.Right);
          ("resp p50", Table.Right);
          ("resp p99", Table.Right);
          ("faults/inter", Table.Right);
          ("stalls", Table.Right);
          ("regime", Table.Left);
        ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          string_of_int r.kn_cap;
          Table.fmt_float ~decimals:2 r.kn_throughput;
          Table.fmt_float ~decimals:0 r.kn_p50;
          Table.fmt_float ~decimals:0 r.kn_p99;
          Table.fmt_float ~decimals:1 r.kn_faults_per;
          string_of_int r.kn_stalls;
          (if r.kn_cap <= negotiated then "fits" else "over-admitted");
        ])
    rows;
  t

(* The knee verdict CI greps for: faults per interaction at the worst
   over-admitted point vs at the negotiated cap. *)
let knee_verdict rows =
  let at cap = List.find (fun r -> r.kn_cap = cap) rows in
  let fit = at negotiated in
  let worst =
    List.fold_left (fun acc r -> if r.kn_faults_per > acc.kn_faults_per then r else acc)
      fit rows
  in
  let blowup = worst.kn_faults_per /. Float.max 1e-9 fit.kn_faults_per in
  ( blowup >= 2.0 && worst.kn_cap > negotiated,
    Printf.sprintf
      "thrashing knee: cap %d -> %.1f faults/interaction vs %.1f at negotiated cap %d (x%.1f)"
      worst.kn_cap worst.kn_faults_per fit.kn_faults_per negotiated blowup )

(* ----- 3. policy parity and the kernel surface ----- *)

let parity_policies = [ Workload.Use_mlf; Workload.Use_fifo; Workload.Use_external ]

let parity_spec policy =
  {
    Workload.default with
    seed = 29;
    users = 6;
    interactions = 3;
    think = 5_000;
    service = 800;
    working_set = 3;
    passes = 2;
    batch = 2;
    batch_chunks = 3;
    batch_chunk = 1_500;
    daemons = 1;
    vps = 2;
    cap = 2;
    policy;
  }

let run_parity () =
  Multics_par.Par.map (fun p -> Workload.run (parity_spec p)) parity_policies

let policy_of_choice = function
  | Workload.Use_mlf -> Sched.default_mlf
  | Workload.Use_fifo -> Sched.Fifo
  | Workload.Use_external -> Sched.External (Sched.user_ring_mlf ())

let parity_table results =
  let t =
    Table.create
      ~title:(Printf.sprintf "%s: policy parity and kernel surface" id)
      ~columns:
        [
          ("policy", Table.Left);
          ("resp p99", Table.Right);
          ("preempt", Table.Right);
          ("upcalls", Table.Right);
          ("granted", Table.Right);
          ("refused", Table.Right);
          ("digest", Table.Right);
          ("ring0 stmts", Table.Right);
          ("policy stmts", Table.Right);
        ]
  in
  List.iter2
    (fun choice (r : Workload.result) ->
      let s = Sched.surface (policy_of_choice choice) in
      let stat name = try List.assoc name r.Workload.r_sched with Not_found -> 0 in
      Table.add_row t
        [
          r.Workload.r_policy;
          Table.fmt_float ~decimals:0 r.Workload.r_response.Stats.p99;
          string_of_int (stat "preemptions");
          string_of_int (stat "policy.upcalls");
          string_of_int r.Workload.r_audit_granted;
          string_of_int r.Workload.r_audit_refused;
          Printf.sprintf "%08x" r.Workload.r_signature;
          string_of_int s.Sched.surf_ring0;
          string_of_int s.Sched.surf_policy_stmts;
        ])
    parity_policies results;
  t

let parity_verdict results =
  match results with
  | [] -> (false, "parity: no runs")
  | (first : Workload.result) :: rest ->
      let agree (r : Workload.result) =
        r.Workload.r_signature = first.Workload.r_signature
        && r.Workload.r_audit_granted = first.Workload.r_audit_granted
        && r.Workload.r_audit_refused = first.Workload.r_audit_refused
        && r.Workload.r_completed = first.Workload.r_completed
      in
      if List.for_all agree rest then
        ( true,
          Printf.sprintf
            "mediation is schedule-invariant: digest %08x, %d granted / %d refused under every \
             policy"
            first.Workload.r_signature first.Workload.r_audit_granted
            first.Workload.r_audit_refused )
      else (false, "POLICY PERTURBED MEDIATION: audit trails diverged across policies")

let render () =
  let buf = Buffer.create 4096 in
  let sweep645 = run_sweep ~cost:Cost.h645 in
  let sweep6180 = run_sweep ~cost:Cost.h6180 in
  Buffer.add_string buf (Table.render (sweep_table ~label:"H645" sweep645));
  Buffer.add_string buf "\n\n";
  Buffer.add_string buf (Table.render (sweep_table ~label:"H6180" sweep6180));
  Buffer.add_string buf "\n\n";
  let knee = run_knee () in
  Buffer.add_string buf (Table.render (knee_table knee));
  let knee_ok, knee_line = knee_verdict knee in
  Buffer.add_string buf
    (Printf.sprintf "\n%s %s\n\n" (if knee_ok then "[knee]" else "[NO KNEE]") knee_line);
  let parity = run_parity () in
  Buffer.add_string buf (Table.render (parity_table parity));
  let par_ok, par_line = parity_verdict parity in
  Buffer.add_string buf
    (Printf.sprintf "\n%s %s\n" (if par_ok then "[parity]" else "[PARITY BROKEN]") par_line);
  Buffer.contents buf
