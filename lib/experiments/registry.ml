(* The experiment registry: every table the reproduction regenerates,
   addressable by id.  [bin/experiments.exe] prints these; EXPERIMENTS.md
   records the paper-vs-measured comparison for each. *)

type experiment = {
  id : string;
  title : string;
  paper_claim : string;
  render : unit -> string;
}

let all =
  [
    {
      id = E1_linker_gates.id;
      title = E1_linker_gates.title;
      paper_claim = E1_linker_gates.paper_claim;
      render = E1_linker_gates.render;
    };
    {
      id = E2_naming_removal.id;
      title = E2_naming_removal.title;
      paper_claim = E2_naming_removal.paper_claim;
      render = E2_naming_removal.render;
    };
    {
      id = E3_combined_removal.id;
      title = E3_combined_removal.title;
      paper_claim = E3_combined_removal.paper_claim;
      render = E3_combined_removal.render;
    };
    {
      id = E4_ring_crossing.id;
      title = E4_ring_crossing.title;
      paper_claim = E4_ring_crossing.paper_claim;
      render = E4_ring_crossing.render;
    };
    {
      id = E5_boundary_sweep.id;
      title = E5_boundary_sweep.title;
      paper_claim = E5_boundary_sweep.paper_claim;
      render = E5_boundary_sweep.render;
    };
    {
      id = E6_page_control.id;
      title = E6_page_control.title;
      paper_claim = E6_page_control.paper_claim;
      render = E6_page_control.render;
    };
    {
      id = E7_buffers.id;
      title = E7_buffers.title;
      paper_claim = E7_buffers.paper_claim;
      render = E7_buffers.render;
    };
    {
      id = E8_interrupts.id;
      title = E8_interrupts.title;
      paper_claim = E8_interrupts.paper_claim;
      render = E8_interrupts.render;
    };
    {
      id = E9_policy_partition.id;
      title = E9_policy_partition.title;
      paper_claim = E9_policy_partition.paper_claim;
      render = E9_policy_partition.render;
    };
    {
      id = E10_lattice_flow.id;
      title = E10_lattice_flow.title;
      paper_claim = E10_lattice_flow.paper_claim;
      render = E10_lattice_flow.render;
    };
    {
      id = E11_penetration.id;
      title = E11_penetration.title;
      paper_claim = E11_penetration.paper_claim;
      render = E11_penetration.render;
    };
    {
      id = E12_kernel_inventory.id;
      title = E12_kernel_inventory.title;
      paper_claim = E12_kernel_inventory.paper_claim;
      render = E12_kernel_inventory.render;
    };
    {
      id = E13_cost_of_security.id;
      title = E13_cost_of_security.title;
      paper_claim = E13_cost_of_security.paper_claim;
      render = E13_cost_of_security.render;
    };
    {
      id = E14_certification.id;
      title = E14_certification.title;
      paper_claim = E14_certification.paper_claim;
      render = E14_certification.render;
    };
    {
      id = E15_fail_secure.id;
      title = E15_fail_secure.title;
      paper_claim = E15_fail_secure.paper_claim;
      render = E15_fail_secure.render;
    };
    {
      id = E16_avc.id;
      title = E16_avc.title;
      paper_claim = E16_avc.paper_claim;
      render = E16_avc.render;
    };
    {
      id = E17_timesharing.id;
      title = E17_timesharing.title;
      paper_claim = E17_timesharing.paper_claim;
      render = E17_timesharing.render;
    };
    {
      id = E18_smp.id;
      title = E18_smp.title;
      paper_claim = E18_smp.paper_claim;
      render = E18_smp.render;
    };
    {
      id = E19_sid.id;
      title = E19_sid.title;
      paper_claim = E19_sid.paper_claim;
      render = E19_sid.render;
    };
    {
      id = E20_site.id;
      title = E20_site.title;
      paper_claim = E20_site.paper_claim;
      render = E20_site.render;
    };
    {
      id = E21_mc.id;
      title = E21_mc.title;
      paper_claim = E21_mc.paper_claim;
      render = E21_mc.render;
    };
    {
      id = E22_specialisation.id;
      title = E22_specialisation.title;
      paper_claim = E22_specialisation.paper_claim;
      render = E22_specialisation.render;
    };
    {
      id = Ablations.A1.id;
      title = Ablations.A1.title;
      paper_claim = Ablations.A1.paper_claim;
      render = Ablations.A1.render;
    };
    {
      id = Ablations.A2.id;
      title = Ablations.A2.title;
      paper_claim = Ablations.A2.paper_claim;
      render = Ablations.A2.render;
    };
    {
      id = Ablations.A3.id;
      title = Ablations.A3.title;
      paper_claim = Ablations.A3.paper_claim;
      render = Ablations.A3.render;
    };
  ]

let find id =
  List.find_opt (fun e -> String.lowercase_ascii e.id = String.lowercase_ascii id) all

let ids = List.map (fun e -> e.id) all

let render_one e =
  Printf.sprintf "%s — %s\npaper: %s\n\n%s" e.id e.title e.paper_claim (e.render ())

let render_all () = String.concat "\n\n" (List.map render_one all)

(* The harness's command line, as data: bin/experiments.exe evaluates
   this term, and the test suite drives [parse] over every registered
   id to prove each runner accepts its flags without rendering
   anything. *)
module Cli = struct
  open Cmdliner

  type selection = { list_only : bool; stats : bool; sel_ids : string list }

  let list_flag =
    Arg.(value & flag & info [ "list"; "l" ] ~doc:"List experiment ids and titles.")

  let stats_flag =
    Arg.(
      value & flag
      & info [ "stats" ] ~doc:"Print the kernel observability snapshot after each experiment.")

  let ids_arg =
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (e.g. e1 e7).")

  let term =
    Term.(
      const (fun list_only stats sel_ids -> { list_only; stats; sel_ids })
      $ list_flag $ stats_flag $ ids_arg)

  let info = Cmd.info "experiments" ~doc:"Regenerate the tables of the reproduction"

  let parse argv =
    match Cmd.eval_value ~argv (Cmd.v info term) with
    | Ok (`Ok sel) -> Ok sel
    | Ok `Version | Ok `Help -> Error "not a selection (help/version)"
    | Error _ -> Error "malformed command line"
end
