(* E20 — distributed kernel sites: fleet scaling, cross-site
   revocation, fail-secure partitions.

   The paper's mediation argument is local: every reference checked by
   this kernel, every descriptor revoked before the mutating call
   returns.  E20 asks what survives when "this kernel" becomes a fleet
   of kernels joined by lossy links (lib/site) — the smp connect
   discipline generalized over a network.  Four measurements:

   1. A fleet sweep: 10k -> 1M logical users over 1/2/4/8 sites via
      the direct Workload driver.  Cross-site cycles (round trips plus
      backoff stalls) grow with the site count; the fleet digest must
      not move at all — the sequential driver's order-preserving
      signature is compared across site counts at every population.

   2. Revocation latency: the [site.revocation.cycles] histogram per
      site count — what a fleet-wide connect storm costs inside one
      set_acl call.

   3. The coherence-parity oracle, E18's generalized: 100 seeds x
      {1,2,4} sites x 4 fault plans of scheduler-driven session load,
      every fifth interaction a live cross-site revocation.  The
      multiset mediation digest and the grant/refusal totals must be
      identical to the 1-site run.  Zero divergences is the CI gate.

   4. The directed partition race: revoke across a severed link.  The
      origin must stall through the retry budget and fence the silent
      peer; the fenced site must refuse everything (never its warm,
      now-stale Permit); salvage-and-resync must replay the missed
      epochs and come back with the revocation applied. *)

open Multics_sched
module Site = Multics_site.Site
module System = Multics_kernel.System
module Api = Multics_kernel.Api
module Acl = Multics_access.Acl
module Label = Multics_access.Label
module Policy = Multics_access.Policy
module Mode = Multics_machine.Mode
module Table = Multics_util.Table
module Obs = Multics_obs.Obs

let id = "E20"

let title = "distributed sites: fleet sweep, cross-site revocation, fail-secure partitions"

let paper_claim =
  "mediation must not weaken when the kernel is replicated across sites: an access-control \
   change is visible at every site before the mutating call returns, a site that cannot \
   confirm the remote invalidation stalls and then fences the silent peer rather than let \
   it serve a stale decision, and a crashed site re-enters only through salvage-and-resync"

(* ----- 1 + 2. the fleet sweep ----- *)

let user_points = [ 10_000; 100_000; 1_000_000 ]
let site_points = [ 1; 2; 4; 8 ]

type sweep_cell = {
  row : Workload.sweep_row;
  revocation_mean : float;  (** cycles per cross-site revocation storm *)
}

let run_sweep_cell ~users ~sites =
  let before = Obs.Snapshot.capture () in
  let row = Workload.run_fleet_sweep ~users ~sites ~seed:20 () in
  let after = Obs.Snapshot.capture () in
  let d = Obs.Snapshot.diff ~before ~after in
  let revocation_mean =
    match List.assoc_opt "site.revocation.cycles" d.Obs.Snapshot.histograms with
    | Some h when h.Obs.Snapshot.count > 0 ->
        float_of_int h.Obs.Snapshot.sum /. float_of_int h.Obs.Snapshot.count
    | _ -> 0.0
  in
  { row; revocation_mean }

let sweep_table cells =
  let t =
    Table.create
      ~title:(Printf.sprintf "%s: fleet sweep (seed 20, revocation every 1000th user)" id)
      ~columns:
        [
          ("users", Table.Right);
          ("sites", Table.Right);
          ("ops", Table.Right);
          ("granted", Table.Right);
          ("refused", Table.Right);
          ("revocations", Table.Right);
          ("cross cycles", Table.Right);
          ("revoke mean", Table.Right);
          ("fenced", Table.Right);
        ]
  in
  List.iter
    (fun c ->
      Table.add_row t
        [
          string_of_int c.row.Workload.sw_users;
          string_of_int c.row.Workload.sw_sites;
          string_of_int c.row.Workload.sw_ops;
          string_of_int c.row.Workload.sw_granted;
          string_of_int c.row.Workload.sw_refused;
          string_of_int c.row.Workload.sw_revocations;
          string_of_int c.row.Workload.sw_cross_cycles;
          Table.fmt_float ~decimals:0 c.revocation_mean;
          string_of_int c.row.Workload.sw_fenced;
        ])
    cells;
  t

(* The sweep driver is sequential, so the order-preserving digest must
   be bit-identical across site counts at every population. *)
let sweep_parity_verdict cells =
  let divergent =
    List.concat_map
      (fun users ->
        let rows = List.filter (fun c -> c.row.Workload.sw_users = users) cells in
        match rows with
        | [] -> []
        | base :: rest ->
            List.filter_map
              (fun c ->
                if
                  c.row.Workload.sw_signature <> base.row.Workload.sw_signature
                  || c.row.Workload.sw_granted <> base.row.Workload.sw_granted
                  || c.row.Workload.sw_refused <> base.row.Workload.sw_refused
                then Some (users, c.row.Workload.sw_sites)
                else None)
              rest)
      user_points
  in
  if divergent = [] then
    ( true,
      Printf.sprintf
        "fleet digest is site-count-invariant across the sweep: %s users x {%s} sites"
        (String.concat "," (List.map string_of_int user_points))
        (String.concat "," (List.map string_of_int site_points)) )
  else
    ( false,
      Printf.sprintf "SWEEP PARITY BROKEN at: %s"
        (String.concat ", "
           (List.map (fun (u, s) -> Printf.sprintf "%d users/%d sites" u s) divergent)) )

(* ----- 3. the coherence-parity oracle ----- *)

let parity_seeds = 100
let parity_site_points = [ 1; 2; 4 ]

(* Recoverable plans only ([every:k], k >= 2): bounded retry always
   delivers, so no site is fenced and parity is exact.  Fencing under
   unrecoverable loss is the directed race's subject, not the
   oracle's. *)
let parity_plans =
  [ ""; "site.drop=every:3"; "site.delay=every:2"; "site.drop=every:5,site.delay=every:3" ]

let parity_spec seed sites fault_spec =
  {
    Workload.default with
    seed;
    users = 3;
    interactions = 2;
    think = 2_000;
    service = 300;
    working_set = 2;
    passes = 2;
    batch = 1;
    batch_chunks = 2;
    batch_chunk = 500;
    daemons = 1;
    vps = 4;
    (* fixed while sites vary: same schedule-level parallelism *)
    sites;
    fault_spec;
  }

let run_parity () =
  (* One task per seed (each covers every plan × site-count pair),
     fanned out over domains; per-seed divergence counts are summed in
     seed order, so the total never depends on the pool size. *)
  let per_seed =
    Multics_par.Par.run_seeds parity_seeds (fun seed ->
        let divergences = ref 0 in
        List.iter
          (fun plan ->
            let base = Workload.run (parity_spec seed 1 plan) in
            List.iter
              (fun sites ->
                if sites > 1 then begin
                  let r = Workload.run (parity_spec seed sites plan) in
                  if
                    r.Workload.r_signature <> base.Workload.r_signature
                    || r.Workload.r_audit_granted <> base.Workload.r_audit_granted
                    || r.Workload.r_audit_refused <> base.Workload.r_audit_refused
                    || r.Workload.r_completed <> base.Workload.r_completed
                  then incr divergences
                end)
              parity_site_points)
          parity_plans;
        !divergences)
  in
  List.fold_left ( + ) 0 per_seed

let parity_verdict divergences =
  if divergences = 0 then
    ( true,
      Printf.sprintf
        "mediation is site-count-invariant: %d seeds x {%s} sites, %d fault plans, 0 divergences"
        parity_seeds
        (String.concat "," (List.map string_of_int parity_site_points))
        (List.length parity_plans) )
  else
    ( false,
      Printf.sprintf
        "COHERENCE BROKEN: %d divergent runs (a site served a decision the fleet revoked)"
        divergences )

(* ----- 4. the directed partition race ----- *)

type race_outcome = {
  stale_permits : int;
  fenced_refusals : int;
  rejoin_replayed : int;
  rejoin_ok : bool;
}

let run_race () =
  let fleet = Site.create ~nsites:2 () in
  Site.add_account fleet ~person:"Alice" ~project:"Dev" ~password:"pw"
    ~clearance:Label.unclassified;
  let handle =
    match Site.login fleet ~person:"Alice" ~project:"Dev" ~password:"pw" with
    | Ok h -> h
    | Error e -> failwith (System.login_error_to_string e)
  in
  let path = ">udd>Dev>Alice>plans" in
  (match
     Site.dispatch fleet ~user:0 ~handle
       (Api.Call.Create_segment_by_path
          {
            path;
            acl = Acl.of_strings [ ("Alice.Dev.*", "rw") ];
            label = Label.unclassified;
            brackets = None;
          })
   with
  | Ok _ -> ()
  | Error e -> failwith (Api.error_to_string e));
  (* Warm site 1's decision machinery with a Permit. *)
  (match Site.probe fleet ~site:1 ~handle ~path ~requested:Mode.r with
  | Ok Policy.Permit -> ()
  | _ -> failwith "E20 race: site 1 should hold a Permit before the partition");
  Site.partition fleet 0 1;
  (match Site.dispatch fleet ~user:0 ~handle (Api.Call.Set_acl_by_path { path; acl = Acl.empty })
   with
  | Ok _ -> ()
  | Error e -> failwith (Api.error_to_string e));
  (* The race window: the revocation has returned at site 0, the link
     is dark, and site 1 still holds the warm Permit.  Count what the
     fenced site serves. *)
  let stale = ref 0 in
  (match Site.probe fleet ~site:1 ~handle ~path ~requested:Mode.r with
  | Ok Policy.Permit -> incr stale
  | Ok (Policy.Refuse _) | Error _ -> ());
  (match Site.dispatch fleet ~user:1 ~handle (Api.Call.Resolve_path { path }) with
  | Ok _ -> incr stale
  | Error _ -> ());
  Site.heal_link fleet 0 1;
  let rejoin_replayed, rejoin_ok =
    match Site.rejoin fleet 1 with
    | Some report -> (
        ( report.Site.rj_replayed,
          report.Site.rj_epoch = Site.epoch fleet
          &&
          match Site.probe fleet ~site:1 ~handle ~path ~requested:Mode.r with
          | Ok (Policy.Refuse _) -> true
          | _ -> false ))
    | None -> (0, false)
  in
  {
    stale_permits = !stale;
    fenced_refusals = Site.fenced_refusals fleet;
    rejoin_replayed;
    rejoin_ok;
  }

let race_verdict o =
  if o.stale_permits = 0 && o.fenced_refusals > 0 && o.rejoin_ok then
    ( true,
      Printf.sprintf
        "partitioned site served 0 stale Permits (%d fenced refusals); rejoin replayed %d \
         missed epoch(s) and the revocation held"
        o.fenced_refusals o.rejoin_replayed )
  else
    ( false,
      Printf.sprintf
        "STALE DECISION EXPOSED: %d stale Permits, %d fenced refusals, rejoin ok: %b"
        o.stale_permits o.fenced_refusals o.rejoin_ok )

(* ----- per-site observability, aggregated fleet-wide ----- *)

let obs_table () =
  let fleet = Site.create ~nsites:4 () in
  Site.add_account fleet ~person:"Alice" ~project:"Dev" ~password:"pw"
    ~clearance:Label.unclassified;
  let handle =
    match Site.login fleet ~person:"Alice" ~project:"Dev" ~password:"pw" with
    | Ok h -> h
    | Error e -> failwith (System.login_error_to_string e)
  in
  let path = ">udd>Dev>Alice>obs" in
  ignore
    (Site.dispatch fleet ~user:0 ~handle
       (Api.Call.Create_segment_by_path
          {
            path;
            acl = Acl.of_strings [ ("Alice.Dev.*", "rw") ];
            label = Label.unclassified;
            brackets = None;
          }));
  for site = 0 to 3 do
    ignore (Site.probe fleet ~site ~handle ~path ~requested:Mode.r)
  done;
  ignore (Site.dispatch fleet ~user:0 ~handle (Api.Call.Set_acl_by_path { path; acl = Acl.empty }));
  let t =
    Table.create
      ~title:(Printf.sprintf "%s: per-site stats after one replicated create + revoke" id)
      ~columns:
        [
          ("site", Table.Right);
          ("status", Table.Left);
          ("epoch", Table.Right);
          ("audit", Table.Right);
          ("refused", Table.Right);
          ("replica ops", Table.Right);
          ("mismatches", Table.Right);
        ]
  in
  List.iter
    (fun (site, status, epoch, counters) ->
      let c name = try List.assoc name counters with Not_found -> 0 in
      Table.add_row t
        [
          string_of_int site;
          status;
          string_of_int epoch;
          string_of_int (c "audit.records");
          string_of_int (c "audit.refused");
          string_of_int (c "replica.applied");
          string_of_int (c "replica.mismatch");
        ])
    (Site.status_table fleet);
  t

let render () =
  let buf = Buffer.create 4096 in
  (* The fleet-sweep grid (each cell a full Workload.run_fleet_sweep)
     fans out over domains; cells reduce in (users, sites) order so the
     table and the sweep-parity digests are byte-identical at any pool
     size. *)
  let cells =
    Multics_par.Par.map
      (fun (users, sites) -> run_sweep_cell ~users ~sites)
      (List.concat_map
         (fun users -> List.map (fun sites -> (users, sites)) site_points)
         user_points)
  in
  Buffer.add_string buf (Table.render (sweep_table cells));
  let sweep_ok, sweep_line = sweep_parity_verdict cells in
  Buffer.add_string buf
    (Printf.sprintf "\n%s %s\n\n"
       (if sweep_ok then "[sweep-parity]" else "[SWEEP PARITY BROKEN]")
       sweep_line);
  let divergences = run_parity () in
  let par_ok, par_line = parity_verdict divergences in
  Buffer.add_string buf
    (Printf.sprintf "%s %s\n\n" (if par_ok then "[parity]" else "[PARITY BROKEN]") par_line);
  let race = run_race () in
  let race_ok, race_line = race_verdict race in
  Buffer.add_string buf
    (Printf.sprintf "%s %s\n\n" (if race_ok then "[fail-secure]" else "[NOT FAIL-SECURE]") race_line);
  Buffer.add_string buf (Table.render (obs_table ()));
  Buffer.contents buf
